"""Exporters: Chrome ``trace_event`` JSON, JSON-lines, and text summaries.

Three consumers are served:

* ``chrome://tracing`` / https://ui.perfetto.dev — :func:`chrome_trace`
  turns tracer records into the Trace Event Format (one *process* per
  traced simulation run, one *thread* per track, resource holds as complete
  ``X`` events, store levels as ``C`` counter series).  When flow recorders
  are supplied too, every completed wire buffer becomes a lane of per-hop
  ``X`` slices on a ``flow:<stream>`` thread plus ``s``/``t``/``f`` flow
  arrows keyed by the flow id, so the causal chain sender -> torus ->
  ingress -> receiver is a clickable arrow path in the viewer;
* log processing — :func:`write_trace_jsonl` dumps raw records one JSON
  object per line, and :func:`write_timeseries_jsonl` streams the live
  sampler's closed windows plus health events the same way;
* scrapers — :func:`prometheus_exposition` renders a point-in-time text
  exposition (``# TYPE`` + ``name{label="value"} sample`` lines) of the
  metric registry and live latency quantiles;
* humans — :func:`utilization_summary` prints the busiest resources, store
  levels, and counters of one instrumented run as plain text, and
  :func:`live_table` renders the per-window view ``repro top`` shows.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.flow import NullFlowRecorder
from repro.obs.instrument import Instrumentation
from repro.obs.live import NullLiveSampler, WindowSample
from repro.obs.tracer import NullTracer, TraceRecord

#: Simulated seconds -> trace microseconds (the unit Chrome traces use).
_MICROS = 1e6


def trace_record_dict(record: TraceRecord) -> dict:
    """A JSON-ready dict of one raw trace record."""
    out = {
        "ts": record.ts,
        "kind": record.kind,
        "track": record.track,
        "name": record.name,
    }
    if record.ident is not None:
        out["id"] = record.ident
    if record.args is not None:
        out["args"] = record.args
    return out


def write_trace_jsonl(target: Union[str, IO[str]], tracer: NullTracer) -> int:
    """Write raw records as JSON-lines; returns the number of lines."""
    def _dump(fh: IO[str]) -> int:
        count = 0
        for record in tracer:
            fh.write(json.dumps(trace_record_dict(record)) + "\n")
            count += 1
        return count

    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            return _dump(fh)
    return _dump(target)


def flow_trace_events(
    pid: int, recorder: NullFlowRecorder, tid_base: int = 1000
) -> List[dict]:
    """Trace events for completed flows: hop slices plus flow arrows.

    Each stream edge gets one thread (``flow:<stream>``); every completed
    buffer contributes one ``X`` slice per hop (with the latency components
    in ``args``) and a chain of flow-arrow events (``ph`` ``s``/``t``/``f``)
    sharing the flow id, which the trace viewers render as arrows from hop
    to hop.  A disabled recorder yields no events.
    """
    events: List[dict] = []
    tids: Dict[str, int] = {}
    for record in recorder.completed:
        track = f"flow:{record.stream_id}"
        if track not in tids:
            tids[track] = tid_base + len(tids)
            events.append({
                "ph": "M", "pid": pid, "tid": tids[track],
                "name": "thread_name", "args": {"name": track},
            })
        tid = tids[track]
        hops = record.hops
        for position, hop in enumerate(hops):
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": hop.stage, "cat": "flow",
                "ts": hop.start * _MICROS,
                "dur": hop.duration * _MICROS,
                "args": {
                    "flow": record.flow_id,
                    "buffer": record.buffer_id,
                    "nbytes": record.nbytes,
                    "resource": hop.resource,
                    "serialize_s": hop.serialize,
                    "queue_wait_s": hop.queue_wait,
                    "wire_s": hop.wire,
                    "processing_s": hop.processing,
                },
            })
            arrow = {
                "pid": pid, "tid": tid, "cat": "flow",
                "name": f"flow#{record.flow_id}", "id": record.flow_id,
            }
            if position == 0:
                arrow.update({"ph": "s", "ts": hop.start * _MICROS})
            elif position == len(hops) - 1:
                arrow.update({"ph": "f", "bp": "e", "ts": hop.end * _MICROS})
            else:
                arrow.update({"ph": "t", "ts": hop.start * _MICROS})
            events.append(arrow)
    return events


def chrome_trace(
    sections: Sequence[Tuple[str, NullTracer]],
    flow_sections: Sequence[Tuple[str, NullFlowRecorder]] = (),
) -> dict:
    """Convert tracers into one Chrome Trace Event Format document.

    Args:
        sections: ``(label, tracer)`` pairs; each pair becomes one trace
            *process* (pid) named ``label``, so several simulation runs
            (e.g. the repeats of a measurement) can share a timeline.
        flow_sections: ``(label, flow recorder)`` pairs; each becomes an
            additional trace process carrying per-flow hop slices and
            flow arrows (see :func:`flow_trace_events`).

    Returns:
        The trace document (``{"traceEvents": [...], ...}``); serialize
        with ``json.dump`` or use :func:`write_chrome_trace`.
    """
    events: List[dict] = []
    for pid, (label, tracer) in enumerate(sections, start=1):
        events.append({
            "ph": "M", "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": label},
        })
        tids: Dict[str, int] = {}
        open_spans: Dict[Tuple[str, Optional[int]], TraceRecord] = {}
        last_ts = 0.0

        def tid_of(track: str) -> int:
            if track not in tids:
                tids[track] = len(tids) + 1
                events.append({
                    "ph": "M", "pid": pid, "tid": tids[track],
                    "name": "thread_name", "args": {"name": track},
                })
            return tids[track]

        for record in tracer:
            last_ts = max(last_ts, record.ts)
            tid = tid_of(record.track)
            if record.kind == "span_begin":
                open_spans[(record.track, record.ident)] = record
            elif record.kind == "span_end":
                begin = open_spans.pop((record.track, record.ident), None)
                start = begin.ts if begin is not None else record.ts
                event = {
                    "ph": "X", "pid": pid, "tid": tid,
                    "name": record.name, "cat": record.track.split(":", 1)[0],
                    "ts": start * _MICROS,
                    "dur": (record.ts - start) * _MICROS,
                }
                args = record.args if record.args is not None else (
                    begin.args if begin is not None else None
                )
                if args is not None:
                    event["args"] = args
                events.append(event)
            elif record.kind == "instant":
                event = {
                    "ph": "i", "pid": pid, "tid": tid, "s": "t",
                    "name": record.name, "cat": record.track.split(":", 1)[0],
                    "ts": record.ts * _MICROS,
                }
                if record.args is not None:
                    event["args"] = record.args
                events.append(event)
            elif record.kind == "counter":
                events.append({
                    "ph": "C", "pid": pid, "tid": tid,
                    "name": record.track, "ts": record.ts * _MICROS,
                    "args": {record.name: record.args},
                })
        # Spans still open when the run ended (e.g. long-lived processes):
        # close them at the last observed timestamp so they stay visible.
        for (track, _ident), begin in open_spans.items():
            events.append({
                "ph": "X", "pid": pid, "tid": tid_of(track),
                "name": begin.name, "cat": track.split(":", 1)[0],
                "ts": begin.ts * _MICROS,
                "dur": (last_ts - begin.ts) * _MICROS,
                "args": {"unfinished": True},
            })
    next_pid = len(sections) + 1
    for pid, (label, recorder) in enumerate(flow_sections, start=next_pid):
        events.append({
            "ph": "M", "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": f"flows:{label}"},
        })
        events.extend(flow_trace_events(pid, recorder))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    target: Union[str, IO[str]],
    sections: Sequence[Tuple[str, NullTracer]],
    flow_sections: Sequence[Tuple[str, NullFlowRecorder]] = (),
) -> dict:
    """Serialize :func:`chrome_trace` of ``sections`` to a file; returns it."""
    document = chrome_trace(sections, flow_sections)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
    else:
        json.dump(document, target)
    return document


def utilization_summary(obs: Instrumentation, top: int = 20) -> str:
    """Plain-text report of one instrumented run.

    Resources are ranked by busy time (simulated seconds with at least one
    slot held), stores by time-weighted mean level; counters follow in
    name order.  ``top`` truncates each section.
    """
    now = obs.now
    lines = [f"observability summary @ t={now:.6f}s simulated"]

    resources = []
    for series_name in obs.metrics.series:
        if series_name.startswith("resource.busy["):
            name = series_name[len("resource.busy["):-1]
            resources.append((obs.resource_busy_time(name), name))
    resources.sort(key=lambda pair: (-pair[0], pair[1]))
    if resources:
        lines.append("resources (by busy time):")
        for busy, name in resources[:top]:
            share = 100.0 * busy / now if now > 0 else 0.0
            occupancy = obs.resource_occupancy(name)
            acquires = obs.metrics.counters.get(f"resource.acquires[{name}]")
            queue = obs.metrics.series.get(f"resource.queue[{name}]")
            lines.append(
                f"  {name:<28} busy {busy:.6f}s ({share:5.1f}%)"
                f"  occ {occupancy:.6f} slot*s"
                f"  acq {int(acquires.value) if acquires else 0}"
                f"  maxq {int(queue.maximum) if queue else 0}"
            )
        if len(resources) > top:
            lines.append(f"  ... {len(resources) - top} more resources")

    stores = []
    for series_name, series in obs.metrics.series.items():
        if series_name.startswith("store.level["):
            series.finalize(now)
            name = series_name[len("store.level["):-1]
            stores.append((series.mean(now), series.maximum, name))
    stores.sort(key=lambda triple: (-triple[0], triple[2]))
    if stores:
        lines.append("stores (by mean level):")
        for mean, maximum, name in stores[:top]:
            lines.append(f"  {name:<28} mean {mean:8.3f}  max {int(maximum)}")
        if len(stores) > top:
            lines.append(f"  ... {len(stores) - top} more stores")

    gauges = [(name, g) for name, g in sorted(obs.metrics.gauges.items())]
    if gauges:
        lines.append("gauges (current / peak):")
        for name, gauge in gauges[:top]:
            lines.append(f"  {name:<40} {gauge.value:g} / {gauge.peak:g}")

    counters = [
        (name, counter.value)
        for name, counter in sorted(obs.metrics.counters.items())
        if not name.startswith(("resource.acquires[", "resource.waits[",
                                "resource.withdrawals["))
    ]
    if counters:
        lines.append("counters:")
        for name, value in counters:
            lines.append(f"  {name:<40} {value:g}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Live telemetry exporters
# ----------------------------------------------------------------------

def write_timeseries_jsonl(target: Union[str, IO[str]],
                           sampler: NullLiveSampler,
                           label: str = "") -> int:
    """Stream a live sampler's windows + health events as JSON-lines.

    One ``meta`` line (window length, counts, culprit), one ``window``
    line per closed :class:`~repro.obs.live.WindowSample`, one ``health``
    line per emitted event.  Call ``sampler.finalize()`` first if the
    trailing partial window should be included.  Returns the line count.
    """
    def _dump(fh: IO[str]) -> int:
        count = 1
        meta = {
            "kind": "meta",
            "label": label,
            "window_s": sampler.window,
            "windows": len(sampler.windows),
            "health_events": len(sampler.health_events),
        }
        culprit = getattr(sampler, "culprit", None)
        if culprit is not None:
            meta["culprit"] = culprit
        fh.write(json.dumps(meta) + "\n")
        for window in sampler.windows:
            fh.write(json.dumps({"kind": "window", **window.to_dict()}) + "\n")
            count += 1
        for event in sampler.health_events:
            payload = event.to_dict()
            # the record kind is "health"; the event's own kind
            # (saturated/degraded/recovered) moves to "event"
            payload["event"] = payload.pop("kind")
            fh.write(json.dumps({"kind": "health", **payload}) + "\n")
            count += 1
        return count

    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            return _dump(fh)
    return _dump(target)


def _prom_ident(text: str) -> str:
    """Sanitize a metric family name into a Prometheus identifier."""
    ident = "".join(ch if ch.isalnum() else "_" for ch in text)
    while "__" in ident:
        ident = ident.replace("__", "_")
    return ident.strip("_")


def _prom_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_split(name: str) -> Tuple[str, Optional[str]]:
    """Split the registry's ``family[key]`` convention into (family, key)."""
    if name.endswith("]") and "[" in name:
        family, _, key = name.partition("[")
        return family, key[:-1]
    return name, None


def prometheus_exposition(obs: Instrumentation,
                          prefix: str = "repro") -> str:
    """A Prometheus text-format snapshot of one instrumented run.

    Counters become ``<prefix>_<family>_total``, gauges and time-weighted
    means/maxima become gauges; the registry's ``family[key]`` names map
    to an ``entity="key"`` label.  When a live sampler is attached, its
    cumulative flow-latency sketch is exposed as a summary
    (``<prefix>_flow_latency_seconds{quantile="..."}``) along with window
    and health-event totals.  Families and entities are emitted in sorted
    order so the exposition is deterministic for a fixed seed.
    """
    snapshot = obs.snapshot()
    lines: List[str] = [
        f"# repro metrics exposition @ t={snapshot.now:.9f} simulated seconds"
    ]

    def _emit(kind: str, samples: Dict[str, float], suffix: str = "") -> None:
        families: Dict[str, Dict[Optional[str], float]] = {}
        for name in sorted(samples):
            family, key = _prom_split(name)
            families.setdefault(family, {})[key] = samples[name]
        for family in sorted(families):
            metric = f"{prefix}_{_prom_ident(family)}{suffix}"
            lines.append(f"# TYPE {metric} {kind}")
            for key in sorted(families[family], key=lambda k: (k is None, k)):
                value = families[family][key]
                label = (
                    f'{{entity="{_prom_label(key)}"}}' if key is not None else ""
                )
                lines.append(f"{metric}{label} {value:.9g}")

    _emit("counter", snapshot.counters, suffix="_total")
    _emit("gauge", snapshot.gauges)
    _emit("gauge", {
        f"{name}.mean": stats["mean"]
        for name, stats in snapshot.time_weighted.items()
    })

    live = obs.live
    if live.enabled:
        sketch = getattr(live, "latency", None)
        if sketch is not None and sketch.count > 0:
            metric = f"{prefix}_flow_latency_seconds"
            lines.append(f"# TYPE {metric} summary")
            for q in sketch.quantiles:
                lines.append(f'{metric}{{quantile="{q:g}"}} {sketch.quantile(q):.9g}')
            lines.append(f"{metric}_sum {sketch.total:.9g}")
            lines.append(f"{metric}_count {sketch.count}")
        lines.append(f"# TYPE {prefix}_live_windows_total counter")
        lines.append(f"{prefix}_live_windows_total {len(live.windows)}")
        lines.append(f"# TYPE {prefix}_health_events_total counter")
        kinds: Dict[str, int] = {}
        for event in live.health_events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        for kind in sorted(kinds):
            lines.append(
                f'{prefix}_health_events_total{{kind="{kind}"}} {kinds[kind]}'
            )
    return "\n".join(lines) + "\n"


#: Column header of the ``repro top`` window table.
LIVE_HEADER = (
    f"{'win':>4} {'t[ms)':>12} {'events':>7} {'flows':>6} {'Mbps':>9} "
    f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8}  busiest resource"
)


def live_row(window: WindowSample) -> str:
    """One formatted window row (shared by :func:`live_table` and the
    streaming ``repro top`` output)."""
    top_name, top_util = window.top_resource()
    busiest = (
        f"{top_name} {100.0 * top_util:5.1f}%" if top_name is not None else "-"
    )
    latency = window.latency
    return (
        f"{window.index:>4} {window.end * 1e3:>12.3f} {window.events:>7} "
        f"{window.flows_completed:>6} {window.throughput_mbps:>9.2f} "
        f"{latency.get('p50', 0.0) * 1e3:>8.3f} "
        f"{latency.get('p95', 0.0) * 1e3:>8.3f} "
        f"{latency.get('p99', 0.0) * 1e3:>8.3f}  {busiest}"
    )


def live_footer(sampler: NullLiveSampler) -> str:
    """The cumulative-sketch / culprit / health-event summary lines."""
    lines: List[str] = []
    sketch = getattr(sampler, "latency", None)
    if sketch is not None and sketch.count > 0:
        lines.append(
            f"cumulative: {sketch.count} flows, latency p50 "
            f"{sketch.p50 * 1e3:.3f} ms / p95 {sketch.p95 * 1e3:.3f} ms / "
            f"p99 {sketch.p99 * 1e3:.3f} ms"
        )
    culprit = getattr(sampler, "culprit", None)
    if culprit is not None:
        lines.append(f"bottleneck: {culprit}")
    events = sampler.health_events
    if events:
        lines.append(f"health events ({len(events)}):")
        for event in events:
            lines.append(f"  {event}")
    return "\n".join(lines)


def live_table(sampler: NullLiveSampler, limit: Optional[int] = None) -> str:
    """The per-window table ``python -m repro top`` renders.

    One row per closed window: event and flow counts, delivered
    throughput, window latency percentiles (ms), and the busiest resource
    with its windowed utilization.  ``limit`` keeps only the most recent
    rows.  A footer reports the cumulative latency sketch and the
    detector's current culprit + health-event tally.
    """
    windows = sampler.windows
    shown: Sequence[WindowSample] = (
        windows if limit is None or limit >= len(windows) else windows[-limit:]
    )
    lines = [LIVE_HEADER, "-" * len(LIVE_HEADER)]
    if limit is not None and len(windows) > len(shown):
        lines.append(f"  ... {len(windows) - len(shown)} earlier window(s)")
    for window in shown:
        lines.append(live_row(window))
    if not windows:
        lines.append("  (no closed windows)")
    footer = live_footer(sampler)
    if footer:
        lines.append(footer)
    return "\n".join(lines)
