"""The live telemetry plane: rolling windowed time-series over a running sim.

Everything in :mod:`repro.obs` up to here is post-hoc — the
:class:`~repro.obs.flow.FlowRecorder` and
:class:`~repro.obs.profile.BottleneckReport` only speak once the run is
over.  The :class:`LiveSampler` closes that gap: it partitions simulated
time into fixed windows of ``window`` seconds and, at each boundary,
publishes a :class:`WindowSample` carrying

* per-resource **windowed utilization** (busy-slot integral over the
  window divided by window length and capacity),
* per-store **mean queue depth** over the window,
* flow **throughput** (completions, delivered bytes, Mbit/s) and a
  window-local latency sketch (p50/p95/p99 via :mod:`repro.obs.sketch`),
* sim-event counts and the in-flight flow census,

and feeds the :class:`~repro.obs.health.ContinuousBottleneckDetector`,
which turns the window stream into typed ``HealthEvent``s.

Zero cost, even when enabled
----------------------------
The sampler is deliberately **not** a simulated process.  A periodic
timeout process would keep the event queue non-empty (changing ``run()``
termination) and add one event per window even to an otherwise idle sim.
Instead the sampler piggybacks on the instrumentation hub's per-event
``on_step`` hook: when the next event's timestamp reaches a window
boundary, every whole window up to it is closed *before* that event
executes.  Window contents are computed from the metric registry's
time-weighted integrals evaluated exactly at the boundary
(:meth:`~repro.obs.metrics.TimeWeightedStat.integral_at`), so boundaries
need no events of their own and the sampler adds **zero events** to the
simulation — the overhead benchmark pins this.

Windows are half-open ``[start, end)``: an event scheduled exactly at a
boundary belongs to the following window, because its ``on_step`` closes
the preceding window before any of its callbacks run.  The trailing
partial window is closed by :meth:`LiveSampler.finalize` (exporters and
the CLI call it; it is idempotent).

Like the tracer and flow recorder, the disabled twin
(:data:`NULL_LIVE`, a shared :class:`NullLiveSampler`) is installed on
every hub by default and short-circuits every hook behind one attribute
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.obs.health import ContinuousBottleneckDetector, HealthEvent, base_stream
from repro.obs.sketch import LatencySketch
from repro.util.units import MEGA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.flow import FlowRecord
    from repro.obs.instrument import Instrumentation

__all__ = [
    "WindowSample",
    "NullLiveSampler",
    "NULL_LIVE",
    "LiveSampler",
    "DEFAULT_WINDOW",
]

#: Default window length in simulated seconds.  The reproduced runs span
#: milliseconds to tens of milliseconds, so 2 ms yields a handful to a
#: few dozen windows on every stock figure point.
DEFAULT_WINDOW = 0.002

#: Hop components mirrored from :meth:`repro.obs.flow.FlowRecord.component_totals`.
HOP_COMPONENTS: Tuple[str, ...] = ("serialize", "queue_wait", "wire", "processing")

_BUSY_PREFIX = "resource.busy["
_LEVEL_PREFIX = "store.level["


@dataclass(frozen=True, slots=True)
class WindowSample:
    """One closed telemetry window (plain data, JSON-ready)."""

    index: int
    start: float
    end: float
    events: int
    """Kernel events executed inside the window."""
    flows_completed: int
    bytes_delivered: int
    in_flight: int
    """Flows still travelling at the window boundary."""
    throughput_mbps: float
    latency: Dict[str, float] = field(default_factory=dict)
    """Window-local latency sketch summary (``n``/``mean``/``p50``/...)."""
    utilization: Dict[str, float] = field(default_factory=dict)
    """Resource -> busy fraction of capacity over the window."""
    queues: Dict[str, float] = field(default_factory=dict)
    """Store -> time-weighted mean level over the window."""
    stream_bytes: Dict[str, float] = field(default_factory=dict)
    """Base stream label -> bytes delivered inside the window."""
    sp_bytes: Dict[str, float] = field(default_factory=dict)
    """``<base_label>/<sp_id>`` -> bytes delivered *to* that stream
    process inside the window (generation suffixes stripped, so a
    migrated SP keeps one series across ``+gN`` redeployments)."""

    @property
    def span(self) -> float:
        return self.end - self.start

    def top_resource(self) -> Tuple[Optional[str], float]:
        """(name, utilization) of the window's busiest resource."""
        best: Tuple[Optional[str], float] = (None, 0.0)
        for name in sorted(self.utilization):
            value = self.utilization[name]
            if value > best[1]:
                best = (name, value)
        return best

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.index,
            "start": self.start,
            "end": self.end,
            "events": self.events,
            "flows": self.flows_completed,
            "bytes": self.bytes_delivered,
            "in_flight": self.in_flight,
            "mbps": self.throughput_mbps,
            "latency": dict(self.latency),
            "utilization": dict(self.utilization),
            "queues": dict(self.queues),
            "streams": dict(self.stream_bytes),
            "sps": dict(self.sp_bytes),
        }


class NullLiveSampler:
    """The disabled sampler: every hook no-ops behind ``enabled``."""

    __slots__ = ()

    enabled = False
    window = 0.0

    @property
    def windows(self) -> List[WindowSample]:
        return []

    @property
    def health_events(self) -> List[HealthEvent]:
        return []

    def bind(self, obs: "Instrumentation") -> None:
        pass

    def on_step(self, now: float) -> None:
        pass

    def on_failure(self, subject: str, scope: str, detail: str = "") -> None:
        pass

    def note_capacity(self, key: str, capacity: float) -> None:
        pass

    def finalize(self, now: Optional[float] = None) -> None:
        pass


#: Shared disabled sampler (one instance serves every hub).
NULL_LIVE = NullLiveSampler()


class _WindowAccumulator:
    """Mutable counters for the window currently being filled."""

    __slots__ = ("flows", "nbytes", "sketch", "stream_bytes", "sp_bytes")

    def __init__(self) -> None:
        self.flows = 0
        self.nbytes = 0
        self.sketch = LatencySketch()
        self.stream_bytes: Dict[str, float] = {}
        self.sp_bytes: Dict[str, float] = {}


class LiveSampler(NullLiveSampler):
    """Streaming windowed telemetry over one instrumented simulation.

    Args:
        window: Window length in simulated seconds (> 0).
        detector: The health detector fed at each boundary; defaults to a
            fresh :class:`~repro.obs.health.ContinuousBottleneckDetector`
            with stock hysteresis.
        on_window: Optional callback invoked with each closed
            :class:`WindowSample` the moment it closes — this is how the
            ``repro top`` CLI streams rows while the sim runs, and how a
            future adaptive runtime would subscribe.

    A sampler binds to exactly one :class:`Instrumentation` hub (and
    therefore one simulator); rebinding raises, mirroring how a
    FlowRecorder must not be shared between concurrent environments.
    """

    __slots__ = (
        "window", "detector", "latency", "hop_latency", "flows_completed",
        "bytes_delivered", "_windows", "_on_window", "_obs", "_boundary",
        "_index", "_acc", "_prev_busy", "_prev_level", "_prev_events",
        "_capacity", "_finalized",
    )

    enabled = True

    def __init__(self, window: float = DEFAULT_WINDOW,
                 detector: Optional[ContinuousBottleneckDetector] = None,
                 on_window: Optional[Callable[[WindowSample], None]] = None):
        if window <= 0.0:
            raise ValueError(f"window must be > 0 simulated seconds, got {window!r}")
        self.window = window
        self.detector = detector if detector is not None else ContinuousBottleneckDetector()
        self.latency = LatencySketch()           # cumulative end-to-end
        self.hop_latency: Dict[str, LatencySketch] = {
            component: LatencySketch() for component in HOP_COMPONENTS
        }
        self.flows_completed = 0
        self.bytes_delivered = 0
        self._windows: List[WindowSample] = []
        self._on_window = on_window
        self._obs: Optional["Instrumentation"] = None
        self._boundary = window
        self._index = 0
        self._acc = _WindowAccumulator()
        self._prev_busy: Dict[str, float] = {}
        self._prev_level: Dict[str, float] = {}
        self._prev_events = 0.0
        self._capacity: Dict[str, float] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, obs: "Instrumentation") -> None:
        """Attach to the hub whose metrics/flows feed this sampler."""
        if self._obs is not None and self._obs is not obs:
            raise RuntimeError(
                "a LiveSampler is bound to exactly one Instrumentation; "
                "create a fresh sampler per environment"
            )
        self._obs = obs
        if obs.flows.enabled:
            # Hub-lifetime subscription: the sampler lives and dies with its
            # Instrumentation, so the sanitizer's listener census treats the
            # "live-sampler" owner as expected, not leaked.
            obs.flows.add_listener(  # lint: disable=DET006
                self._observe_flow, owner="live-sampler"
            )

    @property
    def windows(self) -> List[WindowSample]:
        """Closed windows, oldest first (call :meth:`finalize` to include
        the trailing partial window)."""
        return self._windows

    @property
    def health_events(self) -> List[HealthEvent]:
        return self.detector.events

    @property
    def culprit(self) -> Optional[str]:
        """The detector's current ranked bottleneck (None before data)."""
        return self.detector.culprit

    def series(self, key: str) -> List[float]:
        """One windowed latency/throughput series by key for export.

        Keys: ``p50``/``p95``/``p99``/``mean`` (window latency, seconds),
        ``mbps``, ``flows``, ``events``, ``in_flight``, ``end`` (boundary
        timestamps).
        """
        if key in ("p50", "p95", "p99", "mean"):
            return [w.latency.get(key, 0.0) for w in self._windows]
        if key == "mbps":
            return [w.throughput_mbps for w in self._windows]
        if key == "flows":
            return [float(w.flows_completed) for w in self._windows]
        if key == "events":
            return [float(w.events) for w in self._windows]
        if key == "in_flight":
            return [float(w.in_flight) for w in self._windows]
        if key == "end":
            return [w.end for w in self._windows]
        raise KeyError(f"unknown live series {key!r}")

    # ------------------------------------------------------------------
    # Hooks (hub-driven, behind `live.enabled`)
    # ------------------------------------------------------------------
    def on_step(self, now: float) -> None:
        """Close every whole window whose boundary the clock has reached.

        Called by ``Instrumentation.on_step`` *before* the current event
        is counted or executed, so a window's contents are exactly the
        activity strictly before its end boundary.
        """
        while not self._finalized and now >= self._boundary:
            self._close(self._boundary, self.window)
            self._boundary += self.window
            self._index += 1

    def note_capacity(self, key: str, capacity: float) -> None:
        """Learn a resource's slot capacity (first report wins)."""
        if key not in self._capacity:
            self._capacity[key] = float(capacity)

    def on_failure(self, subject: str, scope: str, detail: str = "") -> None:
        """Report a hardware failure (fault harness hook) as ``degraded``."""
        now = self._obs.now if self._obs is not None else 0.0
        self.detector.on_failure(
            now, subject=subject, scope=scope, window=self._index, detail=detail
        )

    def _observe_flow(self, record: "FlowRecord") -> None:
        """FlowRecorder completion listener: feed sketches + throughput."""
        if record.eos:
            return
        latency = record.latency
        self.latency.add(latency)
        self.flows_completed += 1
        self.bytes_delivered += record.nbytes
        for component, value in record.component_totals().items():
            self.hop_latency[component].add(value)
        acc = self._acc
        acc.sketch.add(latency)
        acc.flows += 1
        acc.nbytes += record.nbytes
        base = base_stream(record.stream_id)
        acc.stream_bytes[base] = acc.stream_bytes.get(base, 0.0) + record.nbytes
        dst = record.stream_id.rsplit("->", 1)[-1]
        prefix, _, sp = dst.partition("/")
        sp_key = f"{prefix.split('+', 1)[0]}/{sp}" if sp else dst
        acc.sp_bytes[sp_key] = acc.sp_bytes.get(sp_key, 0.0) + record.nbytes
        delivered = record.delivered if record.delivered is not None else 0.0
        self.detector.on_delivery(delivered, record.stream_id, window=self._index)

    # ------------------------------------------------------------------
    # Window assembly
    # ------------------------------------------------------------------
    def _close(self, end: float, span: float) -> None:
        obs = self._obs
        if obs is None:
            raise RuntimeError("LiveSampler.on_step before bind()")
        metrics = obs.metrics
        start = end - span

        counter = metrics.counters.get("sim.events_processed")
        events_total = counter.value if counter is not None else 0.0
        events = int(events_total - self._prev_events)
        self._prev_events = events_total

        utilization: Dict[str, float] = {}
        queues: Dict[str, float] = {}
        for name, series in metrics.series.items():
            if name.startswith(_BUSY_PREFIX):
                key = name[len(_BUSY_PREFIX):-1]
                integral = series.integral_at(end)
                busy = integral - self._prev_busy.get(name, 0.0)
                self._prev_busy[name] = integral
                capacity = self._capacity.get(key, 1.0)
                denominator = span * capacity if capacity > 0.0 else span
                utilization[key] = busy / denominator if denominator > 0.0 else 0.0
            elif name.startswith(_LEVEL_PREFIX):
                key = name[len(_LEVEL_PREFIX):-1]
                integral = series.integral_at(end)
                level = integral - self._prev_level.get(name, 0.0)
                self._prev_level[name] = integral
                queues[key] = level / span if span > 0.0 else 0.0

        acc = self._acc
        in_flight_by_base: Dict[str, int] = {}
        for stream_id, count in obs.flows.in_flight_streams().items():
            base = base_stream(stream_id)
            in_flight_by_base[base] = in_flight_by_base.get(base, 0) + count
        in_flight = obs.flows.in_flight_count

        sample = WindowSample(
            index=self._index,
            start=start,
            end=end,
            events=events,
            flows_completed=acc.flows,
            bytes_delivered=acc.nbytes,
            in_flight=in_flight,
            throughput_mbps=(
                acc.nbytes * 8.0 / MEGA / span if span > 0.0 else 0.0
            ),
            latency=acc.sketch.summary(),
            utilization={k: utilization[k] for k in sorted(utilization)},
            queues={k: queues[k] for k in sorted(queues)},
            stream_bytes={k: acc.stream_bytes[k] for k in sorted(acc.stream_bytes)},
            sp_bytes={k: acc.sp_bytes[k] for k in sorted(acc.sp_bytes)},
        )
        self._windows.append(sample)
        self._acc = _WindowAccumulator()
        self.detector.observe_window(
            sample.index, sample.start, sample.end,
            sample.utilization, sample.stream_bytes, in_flight_by_base,
        )
        if self._on_window is not None:
            self._on_window(sample)

    def finalize(self, now: Optional[float] = None) -> None:
        """Close the trailing partial window at ``now`` (idempotent).

        Args:
            now: The simulation end time; defaults to the bound
                simulator's clock.  Nothing is emitted when the clock sits
                exactly on the last closed boundary.
        """
        if self._finalized:
            return
        end = self._obs.now if now is None and self._obs is not None else (now or 0.0)
        self.on_step(end)  # close any whole windows first
        start = self._boundary - self.window
        span = end - start
        if span > 0.0:
            self._close(end, span)
            self._index += 1
        self._finalized = True

    # ------------------------------------------------------------------
    # Export helpers
    # ------------------------------------------------------------------
    def series_document(self) -> Dict[str, object]:
        """The windowed series as one JSON-ready document (BENCH embed)."""
        return {
            "window_s": self.window,
            "windows": len(self._windows),
            "end": self.series("end"),
            "p50": self.series("p50"),
            "p95": self.series("p95"),
            "p99": self.series("p99"),
            "mbps": self.series("mbps"),
            "flows": self.series("flows"),
            "culprit": self.culprit,
            "health": [event.to_dict() for event in self.health_events],
        }
