"""Observability over the simulation substrate: tracing, metrics, exporters.

The discrete-event kernel and every model running on it (torus, Ethernet
ingress, engine drivers) expose their internal mechanism — resource
contention, queue build-up, padding overhead — through this package, so the
*causes* behind the reproduced figures are assertable in tests and
inspectable on a timeline.

Usage::

    from repro.obs import Instrumentation
    from repro.obs.export import utilization_summary, write_chrome_trace

    obs = Instrumentation()
    env = Environment(EnvironmentConfig(), obs=obs)
    SCSQSession(env).execute(query)
    print(utilization_summary(obs))
    write_chrome_trace("run.json", [("my run", obs.tracer)])

Tracing is strictly opt-in: a simulator created without instrumentation
carries the shared :data:`~repro.obs.instrument.NULL_OBS` hub, whose
``enabled`` flag short-circuits every hook site.
"""

from repro.obs.export import (
    chrome_trace,
    flow_trace_events,
    live_table,
    prometheus_exposition,
    utilization_summary,
    write_chrome_trace,
    write_timeseries_jsonl,
    write_trace_jsonl,
)
from repro.obs.flow import (
    NULL_FLOWS,
    FlowRecord,
    FlowRecorder,
    Hop,
    NullFlowRecorder,
)
from repro.obs.health import (
    ContinuousBottleneckDetector,
    HealthEvent,
    base_stream,
    resource_scope,
)
from repro.obs.instrument import NULL_OBS, Instrumentation, NullInstrumentation
from repro.obs.live import (
    DEFAULT_WINDOW,
    NULL_LIVE,
    LiveSampler,
    NullLiveSampler,
    WindowSample,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
    TimeWeightedStat,
)
from repro.obs.profile import (
    BottleneckReport,
    ResourceCost,
    StageCost,
    StreamLatency,
    profile,
    profile_flows,
)
from repro.obs.sketch import DEFAULT_QUANTILES, LatencySketch, P2Quantile
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, TraceRecord

__all__ = [
    "LiveSampler",
    "NullLiveSampler",
    "NULL_LIVE",
    "WindowSample",
    "DEFAULT_WINDOW",
    "LatencySketch",
    "P2Quantile",
    "DEFAULT_QUANTILES",
    "ContinuousBottleneckDetector",
    "HealthEvent",
    "resource_scope",
    "base_stream",
    "live_table",
    "prometheus_exposition",
    "write_timeseries_jsonl",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceRecord",
    "FlowRecorder",
    "NullFlowRecorder",
    "NULL_FLOWS",
    "FlowRecord",
    "Hop",
    "BottleneckReport",
    "ResourceCost",
    "StageCost",
    "StreamLatency",
    "profile",
    "profile_flows",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Counter",
    "Gauge",
    "TimeWeightedStat",
    "chrome_trace",
    "flow_trace_events",
    "write_chrome_trace",
    "write_trace_jsonl",
    "utilization_summary",
]
