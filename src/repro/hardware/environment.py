"""The complete simulated LOFAR hardware environment.

:class:`Environment` assembles everything Figure 1 of the paper shows: a
Linux front-end cluster (where users and the client manager live), a Linux
back-end cluster (where sensor streams enter), and the BlueGene partition —
plus the simulated interconnects between them and the per-cluster compute
node databases.  One :class:`Environment` owns one
:class:`~repro.sim.core.Simulator`; a fresh environment is created per
measurement run so runs are independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.hardware.bluegene import BlueGene, BlueGeneConfig
from repro.hardware.cndb import ComputeNodeDatabase
from repro.hardware.linux_cluster import LinuxCluster, LinuxClusterConfig
from repro.hardware.node import PPC440D, Node, NodeKind
from repro.net.channels import Channel, LatencyChannel, MpiChannel, TcpChannel
from repro.net.ethernet import EthernetFabric
from repro.net.jitter import make_jitter
from repro.net.params import NetworkParams
from repro.net.torus import RouteTable, TorusNetwork
from repro.sim import Resource, Simulator, Store
from repro.util.errors import HardwareError

#: Cluster names used throughout the paper's queries.
BLUEGENE = "bg"
BACKEND = "be"
FRONTEND = "fe"

#: The clusters every environment exposes, in paper order.  The SCSQL
#: compiler validates cluster names in queries against this tuple so that
#: compilation does not require a live :class:`Environment`.
DEFAULT_CLUSTERS = (FRONTEND, BACKEND, BLUEGENE)


@dataclass(frozen=True)
class EnvironmentConfig:
    """Shape and cost model of one simulated environment.

    Defaults match the paper's experimental set-up: a BlueGene partition
    with four psets/I-O nodes and a four-node back-end cluster (section 5:
    "In the current hardware configuration, we have only four I/O nodes and
    four nodes in the back-end cluster").
    """

    bluegene: BlueGeneConfig = BlueGeneConfig()
    backend_nodes: int = 4
    frontend_nodes: int = 2
    params: NetworkParams = field(default_factory=NetworkParams)
    seed: int = 0

    def with_seed(self, seed: int) -> "EnvironmentConfig":
        """This config with only the seed replaced (topology untouched)."""
        return replace(self, seed=seed)


def _topology_key(config: EnvironmentConfig):
    """The seed-independent part of a config: what a template depends on."""
    return (config.bluegene, config.backend_nodes, config.frontend_nodes, config.params)


#: Per-node mutable status captured by a snapshot: (running_processes, failed).
_NodeStatus = Tuple[int, bool]


@dataclass(frozen=True, slots=True)
class TopologySnapshot:
    """Frozen copy of a template's per-run mutable occupancy state.

    A template's expensive pieces (psets, CNDB node lists, the route memo)
    are immutable; what varies between runs is only the *occupancy*: the
    CNDB round-robin cursors and each node's ``running_processes`` /
    ``failed`` status.  A snapshot copies exactly that, so it stays valid
    no matter what later runs do to the template, and restoring it is a
    handful of integer writes — far cheaper than rebuilding a topology.

    Snapshots are bound to the topology they were taken from
    (:attr:`topology`); restoring one into a template of a different shape
    is rejected.
    """

    topology: tuple
    cursors: Tuple[Tuple[str, int], ...]
    node_status: Tuple[Tuple[str, Tuple[_NodeStatus, ...]], ...]
    io_status: Tuple[_NodeStatus, ...]


class EnvironmentTemplate:
    """Reusable, seed-independent topology of an :class:`Environment`.

    Building the BlueGene partition, the Linux clusters and the CNDBs (and
    warming the torus route memo) is the expensive part of environment
    construction and depends only on the topology fields of the config — not
    on the per-repeat seed.  A measurement sweep builds one template and
    hands it to each per-repeat :class:`Environment`, which then only
    creates the simulator, jitter, and fresh network instances.

    The shared pieces carry a little per-run mutable status
    (``Node.running_processes``, the CNDB round-robin cursors);
    :meth:`reset` returns them to the freshly-built state and is invoked by
    every :class:`Environment` instantiation, so repeats sharing a template
    are bit-identical to repeats building from scratch.  Templates therefore
    must not be shared by *concurrently live* environments within a process;
    the measurement harness uses environments strictly one at a time.
    """

    __slots__ = (
        "config", "bluegene", "backend", "frontend", "routes", "cndbs",
        "_pristine",
    )

    def __init__(self, config: EnvironmentConfig = EnvironmentConfig()):
        self.config = config
        self.bluegene = BlueGene(config.bluegene)
        self.backend = LinuxCluster(LinuxClusterConfig(BACKEND, config.backend_nodes))
        self.frontend = LinuxCluster(LinuxClusterConfig(FRONTEND, config.frontend_nodes))
        self.routes = RouteTable(self.bluegene)
        self.cndbs: Dict[str, ComputeNodeDatabase] = {
            BLUEGENE: ComputeNodeDatabase(BLUEGENE, self.bluegene.compute_nodes),
            BACKEND: ComputeNodeDatabase(BACKEND, self.backend.nodes),
            FRONTEND: ComputeNodeDatabase(FRONTEND, self.frontend.nodes),
        }
        # The freshly-built occupancy; reset() restores it, making reuse
        # bit-identical to building from scratch.
        self._pristine = self.snapshot()

    def matches(self, config: EnvironmentConfig) -> bool:
        """True if ``config`` describes the same topology as this template."""
        return _topology_key(config) == _topology_key(self.config)

    # ------------------------------------------------------------------
    # Occupancy snapshot / restore / fork
    # ------------------------------------------------------------------
    def snapshot(self) -> TopologySnapshot:
        """Capture the current occupancy state as an immutable snapshot.

        Taking a snapshot after deploying a long-lived workload freezes the
        warmed topology (CNDB cursors, per-node process counts, fault
        flags); any number of later :meth:`fork` calls can then start from
        that state instead of from pristine.
        """
        return TopologySnapshot(
            topology=_topology_key(self.config),
            cursors=tuple(
                (name, cndb._rr_cursor) for name, cndb in self.cndbs.items()
            ),
            node_status=tuple(
                (
                    name,
                    tuple(
                        (node.running_processes, node.failed)
                        for node in cndb._nodes
                    ),
                )
                for name, cndb in self.cndbs.items()
            ),
            io_status=tuple(
                (node.running_processes, node.failed)
                for node in self.bluegene.io_nodes
            ),
        )

    def restore(self, snapshot: Optional[TopologySnapshot] = None) -> None:
        """Write a snapshot's occupancy back into the shared topology.

        ``None`` restores the freshly-built (pristine) state.  Restoring a
        snapshot taken from a different topology raises
        :class:`~repro.util.errors.HardwareError`.
        """
        if snapshot is None:
            snapshot = self._pristine
        elif snapshot.topology != _topology_key(self.config):
            raise HardwareError(
                "topology snapshot does not belong to this template "
                f"(snapshot key {snapshot.topology!r})"
            )
        cursors = dict(snapshot.cursors)
        status = dict(snapshot.node_status)
        for name, cndb in self.cndbs.items():
            cndb._rr_cursor = cursors[name]
            for node, (running, failed) in zip(cndb._nodes, status[name]):
                node.running_processes = running
                node.failed = failed
        for node, (running, failed) in zip(
            self.bluegene.io_nodes, snapshot.io_status
        ):
            node.running_processes = running
            node.failed = failed

    def reset(self) -> None:
        """Return the shared mutable status to the freshly-built state."""
        self.restore(self._pristine)

    def fork(
        self,
        seed: Optional[int] = None,
        obs=None,
        snapshot: Optional[TopologySnapshot] = None,
    ) -> "Environment":
        """A fresh :class:`Environment` on this already-built topology.

        The fork reuses the template's psets, CNDBs, and warmed route memo;
        only the simulator, jitter, and network instances are created anew.
        ``seed`` overrides the per-run seed (default: the template config's
        seed); ``obs`` attaches instrumentation to the fork's simulator;
        ``snapshot`` starts the fork from a captured occupancy instead of
        pristine.  Forks of one template must be used sequentially — each
        fork restores the shared occupancy, so starting a new fork
        invalidates its live siblings.
        """
        config = self.config if seed is None else self.config.with_seed(seed)
        return Environment(config, obs=obs, template=self, restore=snapshot)


#: Per-process template cache used by the sweep executor's workers, keyed on
#: the seed-independent topology of the config.
_TEMPLATE_CACHE: Dict[tuple, EnvironmentTemplate] = {}


def shared_template(config: EnvironmentConfig) -> EnvironmentTemplate:
    """A per-process cached :class:`EnvironmentTemplate` for ``config``."""
    key = _topology_key(config)
    template = _TEMPLATE_CACHE.get(key)
    if template is None:
        template = _TEMPLATE_CACHE[key] = EnvironmentTemplate(config)
    return template


class Environment:
    """The heterogeneous parallel computing environment under measurement.

    Pass an :class:`~repro.obs.Instrumentation` as ``obs`` to trace and
    meter everything this environment's simulator runs; by default the
    shared null hub is used and observability costs nothing.

    Pass an :class:`EnvironmentTemplate` as ``template`` to reuse an
    already-built topology (psets, CNDBs, route memo) across repeats; the
    template is reset to its freshly-built state, so results are identical
    to building from scratch.  :meth:`EnvironmentTemplate.fork` is the
    ergonomic spelling of that reuse.

    Pass a :class:`TopologySnapshot` as ``restore`` to start from a
    captured occupancy (a warmed deployment) instead of pristine.
    """

    def __init__(
        self,
        config: EnvironmentConfig = EnvironmentConfig(),
        obs=None,
        template: "EnvironmentTemplate | None" = None,
        restore: Optional[TopologySnapshot] = None,
    ):
        if template is None:
            template = EnvironmentTemplate(config)
            if restore is not None:
                template.restore(restore)
        elif not template.matches(config):
            raise HardwareError(
                f"environment template built for {template.config!r} "
                f"does not match config {config!r}"
            )
        else:
            template.restore(restore)
        self.config = config
        self.template = template
        self.sim = Simulator(obs=obs)
        self.obs = self.sim.obs
        self.jitter = make_jitter(magnitude=config.params.jitter, seed=config.seed)
        self.bluegene = template.bluegene
        self.backend = template.backend
        self.frontend = template.frontend
        self.torus = TorusNetwork(
            self.sim, self.bluegene, config.params.torus, self.jitter,
            routes=template.routes,
        )
        self.fabric = EthernetFabric(
            self.sim, self.bluegene, self.torus, config.params, self.jitter
        )
        self.cndbs: Dict[str, ComputeNodeDatabase] = template.cndbs
        self._cpus: Dict[str, Resource] = {}

    @property
    def params(self) -> NetworkParams:
        return self.config.params

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def cluster_names(self):
        """The clusters of the environment, in paper order."""
        return DEFAULT_CLUSTERS

    def cndb(self, cluster: str) -> ComputeNodeDatabase:
        """The compute node database of ``cluster``."""
        try:
            return self.cndbs[cluster]
        except KeyError:
            raise HardwareError(
                f"unknown cluster {cluster!r}; expected one of {sorted(self.cndbs)}"
            ) from None

    def node(self, cluster: str, index: int) -> Node:
        """The node ``index`` of ``cluster``."""
        return self.cndb(cluster).node(index)

    # ------------------------------------------------------------------
    # Compute CPUs
    # ------------------------------------------------------------------
    def cpu(self, node: Node) -> Resource:
        """The compute-CPU resource of ``node``, shared by its RPs.

        BlueGene compute nodes expose a single compute CPU — "normally one
        is used for computation and the other one for communication" (the
        communication co-processor is modelled separately in the torus).
        Linux nodes expose both cores.
        """
        if node.node_id not in self._cpus:
            capacity = 1 if node.kind is NodeKind.BG_COMPUTE else node.cpu.cores
            self._cpus[node.node_id] = Resource(
                self.sim, capacity=capacity, name=f"cpu[{node.node_id}]"
            )
        return self._cpus[node.node_id]

    def cpu_time_scale(self, node: Node) -> float:
        """Multiplier converting baseline (PPC440) CPU costs to this node.

        Cost-model rates in :class:`~repro.net.params.CpuCostParams` are
        calibrated for the BlueGene's 700 MHz PowerPC 440d; faster CPUs
        (the 2.2 GHz PPC970 of the Linux clusters) scale times down by
        clock ratio.
        """
        return PPC440D.clock_hz / node.cpu.clock_hz

    # ------------------------------------------------------------------
    # Channel selection (paper section 2.3 driver rule)
    # ------------------------------------------------------------------
    def open_channel(
        self, source: Node, destination: Node, deliver: Store, stream_id: str
    ) -> Channel:
        """Create the right stream carrier for a (source, destination) pair.

        MPI inside the BlueGene, TCP for back-end -> BlueGene ingress, and
        an uncontended latency path for the remaining low-volume pairings.
        """
        if source.cluster == BLUEGENE and destination.cluster == BLUEGENE:
            return MpiChannel(self.sim, source, destination, deliver, self.torus)
        if source.cluster == BACKEND and destination.cluster == BLUEGENE:
            return TcpChannel(self.sim, source, destination, deliver, self.fabric, stream_id)
        return LatencyChannel(self.sim, source, destination, deliver, self.params, self.jitter)

    def __repr__(self) -> str:
        return (
            f"<Environment bg={self.bluegene.config.torus_shape} "
            f"be={self.config.backend_nodes} fe={self.config.frontend_nodes} "
            f"seed={self.config.seed}>"
        )
