"""The compute node database (CNDB).

Each cluster coordinator "maintains an internal compute node database (CNDB)
containing the properties and status of the possibly thousands of compute
nodes in its cluster" (paper section 2.2).  The node-selection algorithm and
the SCSQL allocation-sequence functions (``urr``, ``inPset``, ``psetrr``)
are all queries against this database.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.hardware.node import Node, NodeKind
from repro.util.errors import HardwareError


class ComputeNodeDatabase:
    """Properties and live status of the compute nodes of one cluster."""

    def __init__(self, cluster: str, nodes: Sequence[Node]):
        if not nodes:
            raise HardwareError(f"CNDB for {cluster!r} needs at least one node")
        self.cluster = cluster
        self._nodes: List[Node] = list(nodes)
        self._rr_cursor = 0

    # ------------------------------------------------------------------
    # Plain lookups
    # ------------------------------------------------------------------
    def all_nodes(self) -> List[Node]:
        """Every node registered in this CNDB, in enumeration order."""
        return list(self._nodes)

    def node(self, index: int) -> Node:
        """The node with cluster-local enumeration number ``index``."""
        for node in self._nodes:
            if node.index == index:
                return node
        raise HardwareError(f"CNDB {self.cluster!r} has no node {index}")

    def available_nodes(self) -> List[Node]:
        """Nodes that can accept another running process right now."""
        return [n for n in self._nodes if n.is_available]

    def num_nodes(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Allocation-sequence queries (paper section 2.4 / 3.2)
    # ------------------------------------------------------------------
    def round_robin(self) -> Iterator[int]:
        """Node numbers in round-robin order — the ``urr(cl)`` function.

        Each call to the iterator yields "a new available node in the
        cluster in a round-robin fashion".  The cursor is shared across
        queries against this CNDB, matching the stateful behaviour of a
        coordinator handing out fresh nodes.
        """
        count = len(self._nodes)
        for step in range(count):
            node = self._nodes[(self._rr_cursor + step) % count]
            yield node.index
        # Advance the shared cursor once the sequence has been consumed.

    def advance_round_robin(self, steps: int = 1) -> None:
        """Move the shared round-robin cursor forward ``steps`` nodes."""
        if self._nodes:
            self._rr_cursor = (self._rr_cursor + steps) % len(self._nodes)

    def next_round_robin(self) -> int:
        """The next node number in round-robin order; advances the cursor.

        This is one step of the ``urr(cl)`` allocation stream: successive
        calls walk the cluster's nodes cyclically, so successive stream
        processes land on successive nodes.
        """
        node = self._nodes[self._rr_cursor % len(self._nodes)]
        self._rr_cursor = (self._rr_cursor + 1) % len(self._nodes)
        return node.index

    def nodes_in_pset(self, pset_id: int) -> List[int]:
        """Node numbers belonging to pset ``pset_id`` — the ``inPset(k)`` function."""
        members = [n.index for n in self._nodes if n.pset_id == pset_id]
        if not members:
            raise HardwareError(f"CNDB {self.cluster!r} has no pset {pset_id}")
        return members

    def pset_round_robin(self) -> List[int]:
        """Node numbers where each successive node is in a new pset — ``psetrr()``.

        Produces node numbers cycling over psets: the first node of pset 0,
        the first of pset 1, ..., then the second node of pset 0, and so on.
        Compute nodes in successive positions therefore use different I/O
        nodes, parallelizing inbound communication (paper, Query 5/6).
        """
        psets: dict = {}
        for node in self._nodes:
            if node.pset_id is None:
                raise HardwareError(
                    f"node {node.node_id} has no pset; psetrr() requires a BlueGene CNDB"
                )
            psets.setdefault(node.pset_id, []).append(node.index)
        ordered_psets = [psets[k] for k in sorted(psets)]
        sequence: List[int] = []
        depth = max(len(members) for members in ordered_psets)
        for position in range(depth):
            for members in ordered_psets:
                if position < len(members):
                    sequence.append(members[position])
        return sequence

    # ------------------------------------------------------------------
    # Status updates (used by the coordinator when placing RPs)
    # ------------------------------------------------------------------
    def first_available(self, allocation_sequence: Optional[Sequence[int]] = None) -> Node:
        """First available node, honouring an allocation sequence if given.

        Without a sequence this is the paper's "naive node selection
        algorithm ... returning the next available node".  With a sequence,
        "the node selection algorithm will choose the first available node
        in the allocation sequence".

        Raises:
            HardwareError: If no node in the sequence (or cluster) is available.
        """
        if allocation_sequence is None:
            candidates = self.round_robin()
        else:
            candidates = iter(allocation_sequence)
        for index in candidates:
            node = self.node(index)
            if node.is_available:
                return node
        raise HardwareError(
            f"no available node in cluster {self.cluster!r} for the given allocation sequence"
        )

    def __repr__(self) -> str:
        kinds = {k: sum(1 for n in self._nodes if n.kind is k) for k in NodeKind}
        summary = ", ".join(f"{v} {k.value}" for k, v in kinds.items() if v)
        return f"<CNDB {self.cluster!r}: {summary}>"
