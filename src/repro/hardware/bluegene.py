"""The BlueGene/L machine model: torus-addressed compute nodes and psets.

The paper's partition (section 2.1 and section 3.2 observation 5):

* dual-CPU compute nodes on a 3D torus (1.4 Gbps links) and a tree network
  (2.8 Gbps),
* compute nodes grouped into *psets* of 8, each pset served by one I/O node
  with a 1 Gbit/s NIC,
* the experiments ran on a partition with **four** I/O nodes (hence four
  psets, 32 compute nodes) — that scarcity causes the Figure 15 dip at n=5.

Node numbering follows the torus enumeration the paper relies on when it
writes "x=1 and y=2 to select compute nodes arranged as in figure 7A": node
numbers enumerate the X dimension first, then Y, then Z, so consecutive node
numbers are torus neighbours along X, and node ``x_size`` is the +Y
neighbour of node 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hardware.node import PPC440D, Node, NodeCapabilities, NodeKind
from repro.util.errors import HardwareError


@dataclass(frozen=True)
class BlueGeneConfig:
    """Shape and constants of the simulated BlueGene partition.

    The defaults describe the partition used in the paper's experiments:
    4 psets of 8 compute nodes in a 4x4x2 torus, 4 I/O nodes.
    """

    torus_shape: Tuple[int, int, int] = (4, 4, 2)
    pset_size: int = 8
    compute_memory_bytes: int = 512 * 1024 * 1024

    @property
    def num_compute_nodes(self) -> int:
        x, y, z = self.torus_shape
        return x * y * z

    @property
    def num_psets(self) -> int:
        if self.num_compute_nodes % self.pset_size:
            raise HardwareError(
                f"torus {self.torus_shape} not divisible into psets of {self.pset_size}"
            )
        return self.num_compute_nodes // self.pset_size

    def __post_init__(self):
        if any(d < 1 for d in self.torus_shape):
            raise HardwareError(f"invalid torus shape {self.torus_shape}")
        if self.pset_size < 1:
            raise HardwareError(f"invalid pset size {self.pset_size}")
        _ = self.num_psets  # validate divisibility eagerly


class BlueGene:
    """A BlueGene partition: compute nodes, torus coordinates, psets, I/O nodes."""

    CLUSTER_NAME = "bg"

    def __init__(self, config: BlueGeneConfig = BlueGeneConfig()):
        self.config = config
        self.compute_nodes: List[Node] = []
        self.io_nodes: List[Node] = []
        self._coord_to_index: Dict[Tuple[int, int, int], int] = {}
        self._build()

    def _build(self) -> None:
        x_size, y_size, z_size = self.config.torus_shape
        index = 0
        for z in range(z_size):
            for y in range(y_size):
                for x in range(x_size):
                    coord = (x, y, z)
                    pset_id = index // self.config.pset_size
                    node = Node(
                        node_id=f"{self.CLUSTER_NAME}:{index}",
                        cluster=self.CLUSTER_NAME,
                        index=index,
                        kind=NodeKind.BG_COMPUTE,
                        cpu=PPC440D,
                        memory_bytes=self.config.compute_memory_bytes,
                        capabilities=NodeCapabilities.cnk(),
                        torus_coord=coord,
                        pset_id=pset_id,
                    )
                    self.compute_nodes.append(node)
                    self._coord_to_index[coord] = index
                    index += 1
        for pset_id in range(self.config.num_psets):
            self.io_nodes.append(
                Node(
                    node_id=f"{self.CLUSTER_NAME}-io:{pset_id}",
                    cluster=self.CLUSTER_NAME,
                    index=pset_id,
                    kind=NodeKind.BG_IO,
                    cpu=PPC440D,
                    memory_bytes=self.config.compute_memory_bytes,
                    capabilities=NodeCapabilities.io_node(),
                    pset_id=pset_id,
                )
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, index: int) -> Node:
        """The compute node with torus enumeration number ``index``."""
        try:
            return self.compute_nodes[index]
        except IndexError:
            raise HardwareError(
                f"no BlueGene compute node {index} "
                f"(partition has {len(self.compute_nodes)})"
            ) from None

    def coord_of(self, index: int) -> Tuple[int, int, int]:
        """Torus coordinate of compute node ``index``."""
        coord = self.node(index).torus_coord
        assert coord is not None
        return coord

    def index_of(self, coord: Tuple[int, int, int]) -> int:
        """Enumeration number of the compute node at ``coord``."""
        try:
            return self._coord_to_index[coord]
        except KeyError:
            raise HardwareError(f"no compute node at torus coordinate {coord}") from None

    def pset_of(self, index: int) -> int:
        """pset id of compute node ``index``."""
        pset_id = self.node(index).pset_id
        assert pset_id is not None
        return pset_id

    def nodes_in_pset(self, pset_id: int) -> List[Node]:
        """All compute nodes of pset ``pset_id``, in enumeration order."""
        if not 0 <= pset_id < self.config.num_psets:
            raise HardwareError(
                f"no pset {pset_id} (partition has {self.config.num_psets})"
            )
        return [n for n in self.compute_nodes if n.pset_id == pset_id]

    def io_node_of(self, index: int) -> Node:
        """The I/O node serving compute node ``index``."""
        return self.io_nodes[self.pset_of(index)]

    def __repr__(self) -> str:
        return (
            f"<BlueGene {self.config.torus_shape} torus, "
            f"{len(self.compute_nodes)} compute nodes, "
            f"{len(self.io_nodes)} I/O nodes>"
        )
