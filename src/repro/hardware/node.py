"""Node model: compute nodes, I/O nodes, and their capabilities.

The paper's environment (section 2.1) contains three kinds of nodes:

* **BlueGene compute nodes** — dual PowerPC 440d 700 MHz; one CPU computes,
  the other acts as communication co-processor; 512 MB local memory; run the
  single-process CNK operating system with no server capabilities (no
  ``listen()``/``accept()``/``select()``).
* **BlueGene I/O nodes** — one per *pset* of 8 compute nodes, 1 Gbit/s NIC,
  "only used for communication, and cannot be used for computations".
* **Linux cluster nodes** — IBM JS20, dual PowerPC 970 2.2 GHz, 1 GigE NIC,
  full Linux (server-capable, many processes).

These physical constraints are what the coordinator layer enforces when it
places running processes, so they are modelled explicitly here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.util.errors import HardwareError


class NodeKind(enum.Enum):
    """Classification of a node within the heterogeneous environment."""

    BG_COMPUTE = "bg_compute"
    BG_IO = "bg_io"
    LINUX = "linux"


@dataclass(frozen=True)
class CpuSpec:
    """A CPU model, for the CNDB and (eventually) cost-based optimization."""

    model: str
    clock_hz: float
    cores: int = 1

    def __str__(self) -> str:
        return f"{self.model} @ {self.clock_hz / 1e6:.0f} MHz x{self.cores}"


# CPU specs quoted in the paper, section 2.1.
PPC440D = CpuSpec(model="PowerPC 440d", clock_hz=700e6, cores=2)
PPC970 = CpuSpec(model="PowerPC 970", clock_hz=2.2e9, cores=2)


@dataclass(frozen=True)
class NodeCapabilities:
    """Operating-system level capabilities relevant to RP placement."""

    can_listen: bool
    max_processes: Optional[int]  # None = effectively unlimited
    can_compute: bool

    @staticmethod
    def cnk() -> "NodeCapabilities":
        """BlueGene compute-node kernel: one process, no server sockets."""
        return NodeCapabilities(can_listen=False, max_processes=1, can_compute=True)

    @staticmethod
    def io_node() -> "NodeCapabilities":
        """BlueGene I/O node: communication only, no user computation."""
        return NodeCapabilities(can_listen=True, max_processes=None, can_compute=False)

    @staticmethod
    def linux() -> "NodeCapabilities":
        """Full Linux node."""
        return NodeCapabilities(can_listen=True, max_processes=None, can_compute=True)


@dataclass
class Node:
    """One node of the environment.

    Attributes:
        node_id: Globally unique identifier, ``"<cluster>:<index>"``.
        cluster: Name of the owning cluster (``'bg'``, ``'be'``, ``'fe'``).
        index: The node number within its cluster.  For BlueGene compute
            nodes this is the torus enumeration number used by the paper's
            explicit node selections (0, 1, 2, 4, ...).
        kind: Node classification.
        cpu: CPU specification.
        memory_bytes: Local memory size.
        capabilities: OS-level placement constraints.
        torus_coord: (x, y, z) position for BlueGene compute nodes.
        pset_id: pset membership for BlueGene compute nodes.
    """

    node_id: str
    cluster: str
    index: int
    kind: NodeKind
    cpu: CpuSpec
    memory_bytes: int
    capabilities: NodeCapabilities
    torus_coord: Optional[Tuple[int, int, int]] = None
    pset_id: Optional[int] = None
    running_processes: int = field(default=0, repr=False)
    failed: bool = field(default=False, repr=False)

    def __post_init__(self):
        if self.kind is NodeKind.BG_COMPUTE and self.torus_coord is None:
            raise HardwareError(f"BlueGene compute node {self.node_id} needs a torus coordinate")

    @property
    def is_available(self) -> bool:
        """True if another running process may be placed on this node."""
        if self.failed or not self.capabilities.can_compute:
            return False
        limit = self.capabilities.max_processes
        return limit is None or self.running_processes < limit

    def fail(self) -> None:
        """Mark this node as failed: no further process may be placed here.

        Processes already placed keep their accounting (``release`` still
        works), so a deployment torn down after the failure leaves the
        bookkeeping consistent; only *new* placements are refused, by
        every consumer of :attr:`is_available` — the CNDB's
        ``first_available`` scan, the node selectors, and the static plan
        verifier's placement replay.
        """
        self.failed = True

    def restore(self) -> None:
        """Bring a failed node back (the environment template reset path)."""
        self.failed = False

    def acquire(self) -> None:
        """Record the placement of one running process on this node."""
        if not self.is_available:
            raise HardwareError(f"node {self.node_id} cannot accept another process")
        self.running_processes += 1

    def release(self) -> None:
        """Record that one running process on this node terminated."""
        if self.running_processes <= 0:
            raise HardwareError(f"node {self.node_id} has no process to release")
        self.running_processes -= 1

    def __str__(self) -> str:
        return self.node_id
