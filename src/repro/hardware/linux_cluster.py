"""Linux cluster model: the front-end and back-end JS20 clusters.

The paper's front-end cluster hosts the client manager and post-processing;
the back-end cluster receives (simulated) sensor streams and injects them
into the BlueGene over switched Gigabit Ethernet.  The experiments used a
back-end cluster of **four** nodes (section 5: "we have only four I/O nodes
and four nodes in the back-end cluster").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hardware.node import PPC970, Node, NodeCapabilities, NodeKind
from repro.util.errors import HardwareError


@dataclass(frozen=True)
class LinuxClusterConfig:
    """Shape of a Linux cluster."""

    name: str
    num_nodes: int
    memory_bytes: int = 4 * 1024 * 1024 * 1024

    def __post_init__(self):
        if self.num_nodes < 1:
            raise HardwareError(f"cluster {self.name!r} needs at least one node")


class LinuxCluster:
    """A homogeneous cluster of server-capable Linux nodes."""

    def __init__(self, config: LinuxClusterConfig):
        self.config = config
        self.nodes: List[Node] = [
            Node(
                node_id=f"{config.name}:{i}",
                cluster=config.name,
                index=i,
                kind=NodeKind.LINUX,
                cpu=PPC970,
                memory_bytes=config.memory_bytes,
                capabilities=NodeCapabilities.linux(),
            )
            for i in range(config.num_nodes)
        ]

    @property
    def name(self) -> str:
        return self.config.name

    def node(self, index: int) -> Node:
        """The node with cluster-local number ``index``."""
        try:
            return self.nodes[index]
        except IndexError:
            raise HardwareError(
                f"no node {index} in cluster {self.name!r} "
                f"({len(self.nodes)} nodes)"
            ) from None

    def __repr__(self) -> str:
        return f"<LinuxCluster {self.name!r} x{len(self.nodes)}>"
