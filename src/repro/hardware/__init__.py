"""Hardware environment: the simulated LOFAR testbed.

Models the machines of the paper's Figure 1 — a BlueGene partition with
torus-addressed compute nodes, psets and I/O nodes; Linux front-end and
back-end clusters — together with the per-cluster compute node databases
used by the coordinators for node selection.
"""

from repro.hardware.bluegene import BlueGene, BlueGeneConfig
from repro.hardware.cndb import ComputeNodeDatabase
from repro.hardware.environment import (
    BACKEND,
    BLUEGENE,
    FRONTEND,
    Environment,
    EnvironmentConfig,
)
from repro.hardware.linux_cluster import LinuxCluster, LinuxClusterConfig
from repro.hardware.node import (
    PPC440D,
    PPC970,
    CpuSpec,
    Node,
    NodeCapabilities,
    NodeKind,
)

__all__ = [
    "BlueGene",
    "BlueGeneConfig",
    "ComputeNodeDatabase",
    "Environment",
    "EnvironmentConfig",
    "BLUEGENE",
    "BACKEND",
    "FRONTEND",
    "LinuxCluster",
    "LinuxClusterConfig",
    "Node",
    "NodeKind",
    "NodeCapabilities",
    "CpuSpec",
    "PPC440D",
    "PPC970",
]
