"""Receive-side buffering with explicit slot ownership.

The MPI receiver driver "contains double buffers so that one buffer can be
processed while the other one is read or written" (paper section 2.3) — and
the Figure 6/8 experiments compare that against single buffering.  The
difference is *who may touch the receive buffer when*:

* **single buffering** — one receive buffer: while the CPU de-marshals it,
  the communication co-processor cannot deposit the next buffer and stalls
  (stalling, in turn, back-pressures the torus);
* **double buffering** — two buffers: the co-processor fills one while the
  CPU drains the other.

:class:`Inbox` models this with a token pool of ``slots`` receive buffers.
The network deposits via :meth:`put` (acquiring a free slot, blocking while
none is free) and the receiver driver returns the slot with
:meth:`release` once de-marshaling finishes.

Flow tracing (:mod:`repro.obs.flow`) brackets the inbox rather than hooking
it: the delivering network model records a hop when its ``deliver.put``
completes (slot-wait shows up there as queue time), and the receiver driver
records the ``receiver.inbox`` hop when it picks the buffer up — so the
dwell between deposit and pick-up is attributed to the inbox interval
without the inbox itself ever touching ``sim.obs``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.message import WireBuffer
from repro.sim import Store
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Simulator
    from repro.sim.events import Event


class Inbox:
    """A pool of ``slots`` receive buffers between a channel and a driver."""

    def __init__(self, sim: "Simulator", slots: int, name: str = ""):
        if slots < 1:
            raise SimulationError(f"an inbox needs at least one slot, got {slots}")
        self.sim = sim
        self.slots = slots
        self.name = name
        self._tokens = Store(sim, capacity=slots, name=f"{name}.tokens")
        for _ in range(slots):
            self._tokens.put(None)
        self._items = Store(sim, name=f"{name}.items")
        self._closed = False

    def put(self, buffer: WireBuffer) -> "Event":
        """Deposit a buffer; the event triggers once a slot was free.

        Returns a process-event so network models can ``yield deliver.put(b)``
        uniformly for stores and inboxes.
        """
        return self.sim.process(self._put(buffer), name=f"{self.name}.put")

    def _put(self, buffer: WireBuffer):
        if self._closed:
            return
        yield self._tokens.get()
        if self._closed:
            return  # the slot is moot: the receiver died while we waited
        yield self._items.put(buffer)

    def close(self) -> None:
        """Discard deposits after the receiving driver has been terminated.

        A network model delivering into a dead query would otherwise block
        forever on a slot no driver will ever release — and some models
        (torus/tree receive processing) hold the destination co-processor
        across the deposit, wedging the *node* for every later deployment.
        Closing wakes every blocked deposit and drops all future ones.
        """
        if self._closed:
            return
        self._closed = True
        while self._tokens.pending_gets:
            self._tokens.put(None)

    def get(self) -> "Event":
        """Take the oldest deposited buffer (the slot stays owned)."""
        return self._items.get()

    def release(self) -> "Event":
        """Return one slot to the pool after de-marshaling completes."""
        return self._tokens.put(None)

    @property
    def depth(self) -> int:
        """Buffers currently deposited and not yet taken by the driver."""
        return self._items.size

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (deposits are dropped from then on)."""
        return self._closed

    @property
    def pending_gets(self) -> int:
        """Driver gets currently blocked waiting for a deposit."""
        return self._items.pending_gets

    @property
    def blocked_deposits(self) -> int:
        """Network deposits currently blocked waiting for a free slot."""
        return self._tokens.pending_gets

    def kernel_stores(self) -> "list[Store]":
        """The kernel stores backing this inbox (waiter introspection)."""
        return [self._tokens, self._items]
