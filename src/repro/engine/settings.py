"""Per-query execution settings.

These are the knobs the paper's experiments turn: the MPI stream buffer
size and single vs double buffering (section 3.1: "Different buffer
settings for MPI streams inside the BlueGene are evaluated.  Furthermore,
explicit node selections are used...").  TCP streams ignore the buffer-size
knob — "we rely on the buffering of the TCP stack" (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import SimulationError


@dataclass(frozen=True)
class ExecutionSettings:
    """Engine-level settings for one continuous query execution."""

    mpi_buffer_bytes: int = 1000
    """Send/receive buffer size used by MPI stream carriers (Figure 6/8 sweep)."""

    double_buffering: bool = True
    """Two buffers per driver (overlap) versus one (strict alternation)."""

    operator_queue_depth: int = 4
    """Capacity of the object stores between operators inside one RP."""

    flush_interval: float = 5e-3
    """Sender drivers flush a partially filled send buffer after this much
    simulated idle time, so low-rate result streams (e.g. one aggregate per
    window) reach their subscribers promptly in continuous queries."""

    def __post_init__(self):
        if self.mpi_buffer_bytes < 1:
            raise SimulationError(
                f"mpi_buffer_bytes must be positive, got {self.mpi_buffer_bytes}"
            )
        if self.operator_queue_depth < 1:
            raise SimulationError(
                f"operator_queue_depth must be positive, got {self.operator_queue_depth}"
            )
        if self.flush_interval <= 0:
            raise SimulationError(
                f"flush_interval must be positive, got {self.flush_interval}"
            )

    @property
    def driver_slots(self) -> int:
        """Number of driver buffers implied by the buffering mode."""
        return 2 if self.double_buffering else 1
