"""Stream Query Execution Plans (SQEPs).

An RP "is responsible for compiling its subquery into a local Stream Query
Execution Plan, SQEP, and interpreting it" (paper section 2.3).  Here a
SQEP is a tree of :class:`OpSpec` nodes.  Interior nodes name registered
physical operators; ``input`` leaves are subscriptions to the output
streams of other stream processes (the compiled form of ``extract()``).

OpSpec trees are plain data: the SCSQL compiler builds them, coordinators
ship them to (simulated) nodes, and :class:`~repro.engine.rp.RunningProcess`
instantiates them against live stores and drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.util.errors import QueryExecutionError

#: Reserved plan-node name for cross-process stream subscriptions.
INPUT = "input"


@dataclass(frozen=True)
class OpSpec:
    """One node of a stream query execution plan.

    Attributes:
        name: Operator registry name, or :data:`INPUT` for a subscription.
        args: Positional constructor arguments of the operator.
        kwargs: Keyword constructor arguments of the operator.
        children: Upstream plan nodes feeding this operator, in input order.
        producer: For :data:`INPUT` leaves: the id of the stream process
            whose output stream is subscribed to.
    """

    name: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    children: Tuple["OpSpec", ...] = ()
    producer: Optional[str] = None

    def __post_init__(self):
        if self.name == INPUT:
            if self.producer is None:
                raise QueryExecutionError("input plan nodes need a producer id")
            if self.children:
                raise QueryExecutionError("input plan nodes cannot have children")
        elif self.producer is not None:
            raise QueryExecutionError(
                f"only input plan nodes carry a producer; {self.name!r} does not"
            )

    @property
    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)

    def walk(self) -> Iterator["OpSpec"]:
        """Depth-first iteration over the plan tree (children first)."""
        for child in self.children:
            yield from child.walk()
        yield self

    def input_leaves(self) -> Iterator["OpSpec"]:
        """All subscription leaves of the plan, in plan order."""
        for node in self.walk():
            if node.name == INPUT:
                yield node

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line rendering of the plan tree."""
        pad = "  " * indent
        if self.name == INPUT:
            line = f"{pad}input <- {self.producer}"
        else:
            rendered_args = ", ".join(repr(a) for a in self.args)
            line = f"{pad}{self.name}({rendered_args})"
        lines = [line]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


def plan_input(producer: str) -> OpSpec:
    """Build a subscription leaf to the stream process ``producer``."""
    return OpSpec(name=INPUT, producer=producer)


def plan_op(name: str, *args: Any, children: Tuple[OpSpec, ...] = (), **kwargs: Any) -> OpSpec:
    """Build an operator plan node (convenience constructor)."""
    return OpSpec(
        name=name,
        args=tuple(args),
        kwargs=tuple(sorted(kwargs.items())),
        children=tuple(children),
    )
