"""Execution context shared by the operators and drivers of one RP.

Bundles the node an RP runs on, its CPU resource, the cost model, and the
query's execution settings, and provides the ``charge_cpu`` primitive that
turns modelled CPU costs into contended simulated time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import Environment
from repro.hardware.node import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.params import CpuCostParams


class ExecutionContext:
    """Where and under which cost model a piece of engine work runs."""

    def __init__(self, env: Environment, node: Node, settings: ExecutionSettings):
        self.env = env
        self.node = node
        self.settings = settings
        self.cpu = env.cpu(node)
        self._scale = env.cpu_time_scale(node)
        self.cpu_busy_time = 0.0

    @property
    def sim(self):
        return self.env.sim

    @property
    def costs(self) -> "CpuCostParams":
        return self.env.params.cpu

    def charge_cpu(self, baseline_seconds: float):
        """Occupy one CPU of this node for a (scaled, jittered) cost.

        ``baseline_seconds`` is expressed for the 700 MHz BlueGene CPU; it
        is scaled by the node's clock ratio and the run's jitter.  Yields
        from inside an RP process.
        """
        cost = self.env.jitter.apply(baseline_seconds * self._scale)
        with self.cpu.request() as req:
            yield req
            yield self.sim.timeout(cost)
        self.cpu_busy_time += cost

    def charge_object(self):
        """Per-stream-object operator overhead."""
        yield from self.charge_cpu(self.costs.per_object_overhead)

    def marshal_cost(self, nbytes: int) -> float:
        """Baseline CPU seconds to marshal an ``nbytes`` buffer here."""
        cost = self.costs.marshal_time(nbytes)
        if self.settings.double_buffering:
            cost += self.costs.double_buffer_sync_overhead
        return cost

    def demarshal_cost(self, nbytes: int) -> float:
        """Baseline CPU seconds to de-marshal an ``nbytes`` buffer here."""
        cost = self.costs.demarshal_time(nbytes)
        if self.settings.double_buffering:
            cost += self.costs.double_buffer_sync_overhead
        return cost
