"""Operator registry: plan-node names to physical operator classes.

The SQEP compiler emits plan nodes by name; this registry resolves them to
operator classes at instantiation time, so new operators plug in without
touching the plan or compiler code.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.engine.operators.aggregates import Avg, Count, MaxAgg, MinAgg, Sum
from repro.engine.operators.base import Operator
from repro.engine.operators.fft import Fft, RadixCombine
from repro.engine.operators.filters import Above, Below, Sample
from repro.engine.operators.groupwin import GroupWindowAggregate
from repro.engine.operators.grep import Grep
from repro.engine.operators.merge import First, Merge, Relay
from repro.engine.operators.sources import Constant, ExternalReceiver, GenerateArrays, Iota
from repro.engine.operators.transforms import EvenElements, MapFunction, OddElements
from repro.engine.operators.window import WindowAggregate
from repro.util.errors import QueryExecutionError

_OPERATORS: Dict[str, Type[Operator]] = {}


def register_operator(cls: Type[Operator]) -> Type[Operator]:
    """Add an operator class to the registry under its ``name``."""
    if not cls.name or cls.name == Operator.name:
        raise QueryExecutionError(f"operator class {cls.__name__} has no registry name")
    _OPERATORS[cls.name] = cls
    return cls


def operator_class(name: str) -> Type[Operator]:
    """Look up the operator class registered under ``name``."""
    try:
        return _OPERATORS[name]
    except KeyError:
        raise QueryExecutionError(
            f"unknown operator {name!r}; registered: {sorted(_OPERATORS)}"
        ) from None


def registered_operators() -> Dict[str, Type[Operator]]:
    """A copy of the registry (name -> class)."""
    return dict(_OPERATORS)


for _cls in (
    GenerateArrays,
    Constant,
    Iota,
    ExternalReceiver,
    Count,
    Sum,
    Avg,
    MaxAgg,
    MinAgg,
    Merge,
    Relay,
    First,
    Above,
    Below,
    Sample,
    MapFunction,
    EvenElements,
    OddElements,
    Fft,
    RadixCombine,
    Grep,
    WindowAggregate,
    GroupWindowAggregate,
):
    register_operator(_cls)
