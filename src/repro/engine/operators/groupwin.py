"""Keyed (grouped) window aggregation over tuple streams.

Linear-Road-style queries aggregate *per key* — per-vehicle average speed,
per-segment counts.  ``groupwin`` maintains one tumbling count-window per
key over tuple streams and emits ``(key, aggregate)`` pairs as windows
fill; remaining partial windows are flushed at end of stream.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.objects import END_OF_STREAM
from repro.engine.operators.base import Operator
from repro.engine.operators.window import WindowAggregate
from repro.util.errors import QueryExecutionError


class GroupWindowAggregate(Operator):
    """``groupwin(s, fn, size, keyidx, validx)``: per-key tumbling windows."""

    name = "groupwin"
    arity = (1, 1)

    def __init__(self, ctx, inputs, output, fn: str, size: int,
                 key_index: int, value_index: int, flush_partial: bool = True):
        super().__init__(ctx, inputs, output)
        if fn not in WindowAggregate.FUNCTIONS:
            raise QueryExecutionError(
                f"unknown groupwin aggregate {fn!r}; supported: "
                f"{sorted(WindowAggregate.FUNCTIONS)}"
            )
        if size < 1:
            raise QueryExecutionError(f"groupwin size must be >= 1, got {size}")
        self.fn_name = fn
        self.fn = WindowAggregate.FUNCTIONS[fn]
        self.size = size
        self.key_index = key_index
        self.value_index = value_index
        self.flush_partial = flush_partial

    def _field(self, obj, index, what):
        try:
            return obj[index]
        except (TypeError, IndexError, KeyError):
            raise QueryExecutionError(
                f"groupwin() could not read {what} [{index}] of {obj!r}"
            ) from None

    def run(self):
        windows: Dict[object, List[float]] = {}
        order: List[object] = []  # first-seen key order, for determinism
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            yield from self.ctx.charge_object()
            key = self._field(obj, self.key_index, "the key")
            value = self._field(obj, self.value_index, "the value")
            if key not in windows:
                windows[key] = []
                order.append(key)
            bucket = windows[key]
            bucket.append(value)
            if len(bucket) == self.size:
                yield from self.emit((key, self.fn(tuple(bucket))))
                bucket.clear()
        if self.flush_partial:
            for key in order:
                bucket = windows[key]
                if bucket:
                    yield from self.emit((key, self.fn(tuple(bucket))))
        yield from self.finish()
