"""Stream combination operators: merge and relays.

"The function merge(p) generalizes extract() by requesting elements from
each stream process in p.  merge() terminates when (if ever) the last
stream process in p terminates" (paper section 2.4).  The physical merge
forwards objects from its inputs in arrival order and emits end-of-stream
only after every input has ended.

``Relay`` is the identity operator: it materializes ``extract(p)`` when the
extracted stream is itself the RP's result (e.g. ``c=sp(extract(b))`` in
Queries 1-6) and ``streamof(e)`` whose stream semantics are handled at plan
level.
"""

from __future__ import annotations

from repro.engine.objects import END_OF_STREAM
from repro.engine.operators.base import Operator


class Merge(Operator):
    """Fan-in of any number of input streams, arrival order preserved."""

    name = "merge"
    arity = (1, None)

    def run(self):
        sim = self.ctx.sim
        done = sim.event()
        state = {"live": len(self.inputs)}
        forwarders = [
            sim.process(self._forward(store, state, done), name=f"merge-in[{i}]")
            for i, store in enumerate(self.inputs)
        ]
        yield done
        for forwarder in forwarders:
            yield forwarder  # propagate any forwarder failure
        yield from self.finish()

    def _forward(self, store, state, done):
        while True:
            obj = yield store.get()
            if obj is END_OF_STREAM:
                break
            self.objects_in += 1
            yield from self.ctx.charge_object()
            yield from self.emit(obj)
        state["live"] -= 1
        if state["live"] == 0:
            done.succeed()


class Relay(Operator):
    """Identity: forward the single input stream unchanged."""

    name = "relay"
    arity = (1, 1)

    def run(self):
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            yield from self.ctx.charge_object()
            yield from self.emit(obj)
        yield from self.finish()


class First(Operator):
    """``first(s, n)``: the first n objects of a stream — a *stop condition*.

    "The execution of CQs may be stopped ... by a stop condition in the
    query that makes the stream finite" (paper section 2.2).  After the
    n-th object this operator ends its output stream and stops consuming;
    the running process then cancels its upstream subscriptions with
    control messages, which cascades to the producers (they are terminated
    once no subscriber remains), so an unbounded source query terminates
    by itself.
    """

    name = "first"
    arity = (1, 1)

    def __init__(self, ctx, inputs, output, limit: int):
        super().__init__(ctx, inputs, output)
        from repro.util.errors import QueryExecutionError

        if limit < 0:
            raise QueryExecutionError(f"first() needs a limit >= 0, got {limit}")
        self.limit = int(limit)

    def run(self):
        taken = 0
        while taken < self.limit:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                yield from self.finish()
                return
            yield from self.ctx.charge_object()
            yield from self.emit(obj)
            taken += 1
        yield from self.finish()
        # Done without draining the input: the RP supervisor notices the
        # still-live receiver and cancels upstream.
