"""Physical stream operators of the SCSQ engine.

Each operator runs as one simulation process pulling from bounded input
stores and pushing to an output store; see :mod:`repro.engine.operators.base`.
"""

from repro.engine.operators.aggregates import Avg, Count, MaxAgg, MinAgg, Sum
from repro.engine.operators.base import Operator
from repro.engine.operators.fft import Fft, RadixCombine, fft_cost_seconds
from repro.engine.operators.filters import Above, Below, Sample
from repro.engine.operators.groupwin import GroupWindowAggregate
from repro.engine.operators.grep import Grep
from repro.engine.operators.merge import First, Merge, Relay
from repro.engine.operators.registry import (
    operator_class,
    register_operator,
    registered_operators,
)
from repro.engine.operators.sources import Constant, ExternalReceiver, GenerateArrays, Iota
from repro.engine.operators.transforms import EvenElements, MapFunction, OddElements
from repro.engine.operators.window import WindowAggregate

__all__ = [
    "Operator",
    "GenerateArrays",
    "Constant",
    "Iota",
    "ExternalReceiver",
    "Count",
    "Sum",
    "Avg",
    "MaxAgg",
    "MinAgg",
    "Merge",
    "First",
    "Above",
    "Below",
    "Sample",
    "Relay",
    "MapFunction",
    "EvenElements",
    "OddElements",
    "Fft",
    "RadixCombine",
    "fft_cost_seconds",
    "Grep",
    "WindowAggregate",
    "GroupWindowAggregate",
    "operator_class",
    "register_operator",
    "registered_operators",
]
