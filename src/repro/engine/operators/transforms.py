"""Per-object transform operators: generic map and the FFT helpers.

``odd(x)`` and ``even(x)`` "obtain odd and even elements from array x"
(paper section 2.4, the radix2 example).  They tag their outputs with role
and sequence so ``radixcombine()`` can pair partial results after the
merge, whose arrival order is nondeterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.engine.objects import END_OF_STREAM, TaggedObject, size_of
from repro.engine.operators.base import Operator
from repro.util.errors import QueryExecutionError


class MapFunction(Operator):
    """Apply a Python function to every stream object.

    Attributes:
        fn: The per-object function.
        cost_fn: Optional function object -> baseline CPU seconds; defaults
            to the per-object overhead plus a memory-streaming term.
    """

    name = "map"
    arity = (1, 1)

    def __init__(self, ctx, inputs, output, fn: Callable[[Any], Any],
                 cost_fn: Optional[Callable[[Any], float]] = None):
        super().__init__(ctx, inputs, output)
        self.fn = fn
        self.cost_fn = cost_fn

    def _cost(self, obj: Any) -> float:
        if self.cost_fn is not None:
            return self.cost_fn(obj)
        return self.ctx.costs.per_object_overhead + size_of(obj) / self.ctx.costs.generate_rate

    def run(self):
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            yield from self.ctx.charge_cpu(self._cost(obj))
            yield from self.emit(self.fn(obj))
        yield from self.finish()


def _as_array(obj: Any, op_name: str) -> np.ndarray:
    payload = obj.payload if isinstance(obj, TaggedObject) else obj
    if not isinstance(payload, np.ndarray):
        raise QueryExecutionError(f"{op_name}() needs numpy arrays, got {type(payload).__name__}")
    return payload


class _ParitySelect(Operator):
    """Shared machinery of odd()/even(): pick alternating array elements."""

    arity = (1, 1)
    _offset = 0  # 0 = even indices, 1 = odd indices
    _role = ""

    def run(self):
        sequence = 0
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            array = _as_array(obj, self.name)
            cost = self.ctx.costs.per_object_overhead + array.nbytes / self.ctx.costs.generate_rate
            yield from self.ctx.charge_cpu(cost)
            selected = array[self._offset::2]
            yield from self.emit(TaggedObject(tag=self._role, sequence=sequence, payload=selected))
            sequence += 1
        yield from self.finish()


class EvenElements(_ParitySelect):
    """``even(x)``: elements x[0], x[2], ... tagged for radixcombine."""

    name = "even"
    _offset = 0
    _role = "even"


class OddElements(_ParitySelect):
    """``odd(x)``: elements x[1], x[3], ... tagged for radixcombine."""

    name = "odd"
    _offset = 1
    _role = "odd"
