"""Aggregate operators: count, sum, and friends.

``count()`` is how every measurement query in the paper sinks its stream —
"b counts the total number of arrays in the finite stream extracted from a.
... Since only one number is transmitted from b to the client manager, the
total time measured is dominated by the time for streaming the data."
``sum()`` combines partial counts in Queries 3-6.
"""

from __future__ import annotations

from typing import Any

from repro.engine.objects import END_OF_STREAM
from repro.engine.operators.base import Operator
from repro.util.errors import QueryExecutionError


class _FoldAggregate(Operator):
    """Shared machinery: fold the whole input stream into one value.

    The fold state lives on the instance (``acc``/``n``), not as generator
    locals, so :meth:`~repro.engine.operators.base.Operator.snapshot_state`
    can capture a mid-stream aggregate and
    :meth:`~repro.engine.operators.base.Operator.restore_state` can warm-
    start a fresh instance from it — the engine half of snapshot/fork.
    """

    arity = (1, 1)

    def __init__(self, ctx, inputs, output):
        super().__init__(ctx, inputs, output)
        self.acc: Any = self._initial()
        self.n = 0

    def _initial(self) -> Any:
        raise NotImplementedError

    def _step(self, acc: Any, obj: Any) -> Any:
        raise NotImplementedError

    def _final(self, acc: Any, n: int) -> Any:
        return acc

    def snapshot_state(self):
        state = super().snapshot_state()
        state["acc"] = self.acc
        state["n"] = self.n
        return state

    def restore_state(self, state):
        super().restore_state(state)
        self.acc = state["acc"]
        self.n = int(state["n"])

    def run(self):
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            yield from self.ctx.charge_object()
            self.acc = self._step(self.acc, obj)
            self.n += 1
        yield from self.emit(self._final(self.acc, self.n))
        yield from self.finish()


class Count(_FoldAggregate):
    """``count(bag)``: the number of elements in the stream."""

    name = "count"

    def _initial(self):
        return 0

    def _step(self, acc, obj):
        return acc + 1


def _numeric(obj: Any, op_name: str) -> float:
    if isinstance(obj, bool) or not isinstance(obj, (int, float)):
        raise QueryExecutionError(f"{op_name}() needs numeric input, got {obj!r}")
    return obj


class Sum(_FoldAggregate):
    """``sum(bag)``: the sum of a numeric stream."""

    name = "sum"

    def _initial(self):
        return 0

    def _step(self, acc, obj):
        return acc + _numeric(obj, "sum")


class Avg(_FoldAggregate):
    """``avg(bag)``: the arithmetic mean of a numeric stream (None if empty)."""

    name = "avg"

    def _initial(self):
        return 0.0

    def _step(self, acc, obj):
        return acc + _numeric(obj, "avg")

    def _final(self, acc, n):
        return acc / n if n else None


class MaxAgg(_FoldAggregate):
    """``maxagg(bag)``: the maximum of a numeric stream (None if empty)."""

    name = "maxagg"

    def _initial(self):
        return None

    def _step(self, acc, obj):
        value = _numeric(obj, "maxagg")
        return value if acc is None else max(acc, value)


class MinAgg(_FoldAggregate):
    """``minagg(bag)``: the minimum of a numeric stream (None if empty)."""

    name = "minagg"

    def _initial(self):
        return None

    def _step(self, acc, obj):
        value = _numeric(obj, "minagg")
        return value if acc is None else min(acc, value)
