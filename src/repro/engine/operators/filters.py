"""Selection operators over numeric streams.

The paper positions SCSQ as featuring "all common stream operators"
(section 4); these cover the selection family: threshold filters for
event detection (the LOFAR monitoring use case) and systematic sampling
for load shedding.
"""

from __future__ import annotations

from repro.engine.objects import END_OF_STREAM
from repro.engine.operators.base import Operator
from repro.util.errors import QueryExecutionError


class _ThresholdFilter(Operator):
    """Shared machinery of above()/below()."""

    arity = (1, 1)

    def __init__(self, ctx, inputs, output, threshold: float):
        super().__init__(ctx, inputs, output)
        if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
            raise QueryExecutionError(
                f"{self.name}() needs a numeric threshold, got {threshold!r}"
            )
        self.threshold = threshold

    def _keep(self, value: float) -> bool:
        raise NotImplementedError

    def run(self):
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            if isinstance(obj, bool) or not isinstance(obj, (int, float)):
                raise QueryExecutionError(
                    f"{self.name}() filters numeric streams, got {obj!r}"
                )
            yield from self.ctx.charge_object()
            if self._keep(obj):
                yield from self.emit(obj)
        yield from self.finish()


class Above(_ThresholdFilter):
    """``above(s, x)``: the elements of s strictly greater than x."""

    name = "above"

    def _keep(self, value):
        return value > self.threshold


class Below(_ThresholdFilter):
    """``below(s, x)``: the elements of s strictly less than x."""

    name = "below"

    def _keep(self, value):
        return value < self.threshold


class Sample(Operator):
    """``sample(s, k)``: every k-th element of s (systematic load shedding)."""

    name = "sample"
    arity = (1, 1)

    def __init__(self, ctx, inputs, output, every: int):
        super().__init__(ctx, inputs, output)
        if isinstance(every, bool) or not isinstance(every, int) or every < 1:
            raise QueryExecutionError(
                f"sample() needs an integer period >= 1, got {every!r}"
            )
        self.every = every

    def run(self):
        position = 0
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            yield from self.ctx.charge_object()
            if position % self.every == 0:
                yield from self.emit(obj)
            position += 1
        yield from self.finish()
