"""The grep operator behind the paper's distributed mapreduce example.

"the subquery performs a grep for a pattern on the i-th filename in a
table.  Each subquery executes in a separate process" (paper section 2.4).
``grep(pattern, filename)`` scans the named file of the synthetic corpus
(:mod:`repro.workloads.corpus`) and streams out the matching lines.  CPU
cost models a streaming scan at a fixed bytes/second rate.
"""

from __future__ import annotations

import re

from repro.engine.operators.base import Operator
from repro.util.errors import QueryExecutionError

#: Modelled scan throughput of grep on the 700 MHz baseline CPU, bytes/s.
GREP_SCAN_RATE = 150e6

#: Scan cost is charged in chunks of this many bytes so a large file does
#: not occupy the CPU in one indivisible multi-millisecond slab.
_CHUNK_BYTES = 256 * 1024


class Grep(Operator):
    """``grep(pattern, file)``: matching lines of a corpus file."""

    name = "grep"
    arity = (0, 0)

    def __init__(self, ctx, inputs, output, pattern: str, filename: str):
        super().__init__(ctx, inputs, output)
        try:
            self.pattern = re.compile(pattern)
        except re.error as exc:
            raise QueryExecutionError(f"bad grep pattern {pattern!r}: {exc}") from exc
        self.filename = filename

    def run(self):
        from repro.workloads.corpus import read_file  # avoid an import cycle

        lines = read_file(self.filename)
        scanned = 0
        for line in lines:
            scanned += len(line) + 1
            if scanned >= _CHUNK_BYTES:
                yield from self.ctx.charge_cpu(scanned / GREP_SCAN_RATE)
                scanned = 0
            if self.pattern.search(line):
                yield from self.emit(line)
        if scanned:
            yield from self.ctx.charge_cpu(scanned / GREP_SCAN_RATE)
        yield from self.finish()
