"""Window aggregation operators.

The paper notes (section 4) that "SCSQ features all common stream
operators including window aggregation".  These operators provide
count-based sliding windows over numeric streams: every ``slide`` input
objects, the aggregate of the last ``size`` objects is emitted.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Sequence

from repro.engine.objects import END_OF_STREAM
from repro.engine.operators.base import Operator
from repro.util.errors import QueryExecutionError


class WindowAggregate(Operator):
    """Sliding count-window aggregate over a numeric stream."""

    name = "window"
    arity = (1, 1)

    #: Supported aggregate functions.
    FUNCTIONS = {
        "sum": sum,
        "avg": lambda xs: sum(xs) / len(xs),
        "max": max,
        "min": min,
        "count": len,
    }

    def __init__(self, ctx, inputs, output, fn: str, size: int, slide: int = 1):
        super().__init__(ctx, inputs, output)
        if fn not in self.FUNCTIONS:
            raise QueryExecutionError(
                f"unknown window aggregate {fn!r}; supported: {sorted(self.FUNCTIONS)}"
            )
        if size < 1 or slide < 1:
            raise QueryExecutionError(
                f"window size and slide must be >= 1, got size={size} slide={slide}"
            )
        self.fn_name = fn
        self.fn: Callable[[Sequence], object] = self.FUNCTIONS[fn]
        self.size = size
        self.slide = slide

    def run(self):
        window: Deque = deque(maxlen=self.size)
        since_emit = 0
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            yield from self.ctx.charge_object()
            window.append(obj)
            since_emit += 1
            if len(window) == self.size and since_emit >= self.slide:
                since_emit = 0
                yield from self.emit(self.fn(tuple(window)))
        yield from self.finish()
