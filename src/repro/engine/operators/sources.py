"""Source operators: they originate streams instead of transforming them.

``gen_array()`` is the workload generator of every experiment in the paper:
"gen_array() generates the finite stream of 100 arrays of size 3MB each".
``iota()`` generates integer ranges, and ``receiver()`` pulls from a named
external source registered with the engine (the paper's radix2 example
reads "a stream of 1D arrays of signal data" from a receiver).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable

from repro.engine.objects import SyntheticArray
from repro.engine.operators.base import Operator
from repro.util.errors import QueryExecutionError


class GenerateArrays(Operator):
    """``gen_array(nbytes, count)``: a stream of numeric arrays.

    Arrays are represented synthetically (size + sequence number); the
    generation cost models filling the array in memory.  ``count = -1``
    generates an unbounded stream — a true continuous query, terminated
    only by user intervention (paper section 2.2).
    """

    name = "gen_array"
    arity = (0, 0)

    UNBOUNDED = -1

    def __init__(self, ctx, inputs, output, nbytes: int, count: int):
        super().__init__(ctx, inputs, output)
        if nbytes < 1 or count < self.UNBOUNDED:
            raise QueryExecutionError(
                f"gen_array needs nbytes >= 1 and count >= 0 (or -1 for an "
                f"unbounded stream), got {nbytes}, {count}"
            )
        self.nbytes = int(nbytes)
        self.count = int(count)
        # Generation progress lives on the instance so snapshot_state can
        # capture a mid-stream source and restore_state can resume it.
        self.sequence = 0

    def snapshot_state(self):
        state = super().snapshot_state()
        state["sequence"] = self.sequence
        return state

    def restore_state(self, state):
        super().restore_state(state)
        self.sequence = int(state["sequence"])

    def run(self):
        cost_per_array = (
            self.ctx.costs.per_object_overhead
            + self.nbytes / self.ctx.costs.generate_rate
        )
        while self.count == self.UNBOUNDED or self.sequence < self.count:
            yield from self.ctx.charge_cpu(cost_per_array)
            yield from self.emit(
                SyntheticArray(nbytes=self.nbytes, sequence=self.sequence)
            )
            self.sequence += 1
        yield from self.finish()


class Constant(Operator):
    """``constant(v)``: a stream of exactly one object (a lifted scalar)."""

    name = "constant"
    arity = (0, 0)

    def __init__(self, ctx, inputs, output, value):
        super().__init__(ctx, inputs, output)
        self.value = value

    def run(self):
        yield from self.ctx.charge_object()
        yield from self.emit(self.value)
        yield from self.finish()


class Iota(Operator):
    """``iota(n, m)``: the integers n..m as a finite stream."""

    name = "iota"
    arity = (0, 0)

    def __init__(self, ctx, inputs, output, low: int, high: int):
        super().__init__(ctx, inputs, output)
        self.low = int(low)
        self.high = int(high)
        self.position = int(low)

    def snapshot_state(self):
        state = super().snapshot_state()
        state["position"] = self.position
        return state

    def restore_state(self, state):
        super().restore_state(state)
        self.position = int(state["position"])

    def run(self):
        while self.position <= self.high:
            yield from self.ctx.charge_object()
            yield from self.emit(self.position)
            self.position += 1
        yield from self.finish()


class ExternalReceiver(Operator):
    """``receiver(name)``: a stream from a registered external source.

    The source registry maps names to zero-argument factories returning an
    iterable of objects, letting applications (and tests) feed real data —
    e.g. numpy signal arrays for the radix2 FFT example — into queries.
    """

    name = "receiver"
    arity = (0, 0)

    #: Process-wide registry of named external sources.
    _registry: Dict[str, Callable[[], Iterable[Any]]] = {}

    def __init__(self, ctx, inputs, output, source_name: str):
        super().__init__(ctx, inputs, output)
        if source_name not in self._registry:
            raise QueryExecutionError(
                f"no external source {source_name!r} registered; "
                f"known sources: {sorted(self._registry)}"
            )
        self.source_name = source_name

    @classmethod
    def register(cls, name: str, factory: Callable[[], Iterable[Any]]) -> None:
        """Register (or replace) a named external source."""
        cls._registry[name] = factory

    @classmethod
    def unregister(cls, name: str) -> None:
        """Remove a named external source if present."""
        cls._registry.pop(name, None)

    def run(self):
        for obj in self._registry[self.source_name]():
            yield from self.ctx.charge_object()
            yield from self.emit(obj)
        yield from self.finish()
