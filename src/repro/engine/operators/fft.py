"""FFT operators for the paper's radix2 parallelization example.

The paper (section 2.4) parallelizes a streaming FFT with the radix-2
decimation-in-time identity: for an N-point input x with even part E =
FFT(x[0::2]) and odd part O = FFT(x[1::2]),

    X[k]        = E[k] + w^k O[k]
    X[k + N/2]  = E[k] - w^k O[k],      w = exp(-2*pi*i/N)

``fft()`` computes a partial FFT on each (tagged) array; ``radixcombine()``
pairs the odd/even partial results by sequence number after the merge and
applies the butterfly.  Results are verified against ``numpy.fft.fft`` in
the test suite and the ``radix_fft`` example.

CPU cost is modelled as ``fft_cycles_per_butterfly * N log2 N`` cycles on
the 700 MHz baseline CPU.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.engine.objects import END_OF_STREAM, TaggedObject
from repro.engine.operators.base import Operator
from repro.engine.operators.transforms import _as_array
from repro.util.errors import QueryExecutionError

#: Modelled CPU cycles per FFT point per log2 level (PPC440 baseline).
FFT_CYCLES_PER_POINT_LEVEL = 8.0
_BASELINE_CLOCK_HZ = 700e6


def fft_cost_seconds(n_points: int) -> float:
    """Baseline CPU seconds to FFT ``n_points`` complex points."""
    if n_points < 2:
        return 1.0 / _BASELINE_CLOCK_HZ
    return (
        FFT_CYCLES_PER_POINT_LEVEL * n_points * math.log2(n_points) / _BASELINE_CLOCK_HZ
    )


class Fft(Operator):
    """``fft(s)``: FFT of every array in the stream (tags preserved)."""

    name = "fft"
    arity = (1, 1)

    def run(self):
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            array = _as_array(obj, self.name)
            yield from self.ctx.charge_cpu(fft_cost_seconds(len(array)))
            result = np.fft.fft(array)
            if isinstance(obj, TaggedObject):
                result = TaggedObject(tag=obj.tag, sequence=obj.sequence, payload=result)
            yield from self.emit(result)
        yield from self.finish()


class RadixCombine(Operator):
    """``radixcombine(s)``: butterfly-combine paired odd/even partial FFTs.

    The input is the merged stream of tagged partial results; pairs are
    matched by sequence number, so arrival interleaving does not matter.
    """

    name = "radixcombine"
    arity = (1, 1)

    def run(self):
        pending: Dict[int, Dict[str, np.ndarray]] = {}
        while True:
            obj = yield from self.next_object()
            if obj is END_OF_STREAM:
                break
            if not isinstance(obj, TaggedObject) or obj.tag not in ("odd", "even"):
                raise QueryExecutionError(
                    f"radixcombine() needs odd/even tagged partial FFTs, got {obj!r}"
                )
            halves = pending.setdefault(obj.sequence, {})
            if obj.tag in halves:
                raise QueryExecutionError(
                    f"radixcombine() saw two {obj.tag!r} halves for sequence {obj.sequence}"
                )
            halves[obj.tag] = obj.payload
            if len(halves) == 2:
                del pending[obj.sequence]
                combined = self._butterfly(halves["even"], halves["odd"])
                yield from self.ctx.charge_cpu(fft_cost_seconds(len(combined)))
                yield from self.emit(combined)
        if pending:
            raise QueryExecutionError(
                f"radixcombine() ended with {len(pending)} unpaired partial FFTs"
            )
        yield from self.finish()

    @staticmethod
    def _butterfly(even: np.ndarray, odd: np.ndarray) -> np.ndarray:
        if len(even) != len(odd):
            raise QueryExecutionError(
                f"radixcombine() halves differ in length: {len(even)} vs {len(odd)}"
            )
        half = len(even)
        twiddle = np.exp(-2j * np.pi * np.arange(half) / (2 * half))
        spun = twiddle * odd
        return np.concatenate([even + spun, even - spun])
