"""Operator base class and shared plumbing.

A physical operator is one simulation process: it pulls objects from its
input stores, charges modelled CPU time, and pushes results to its output
store.  Streams between operators inside an RP are bounded
:class:`~repro.sim.resources.Store` objects, so a slow consumer
back-pressures its producers — the in-process counterpart of the flow
regulation the paper's RPs do with control messages.

Every operator forwards :data:`~repro.engine.objects.END_OF_STREAM` exactly
once when its work is done, making finite streams terminate cleanly
("the execution of CQs may be stopped ... by a stop condition in the query
that makes the stream finite", section 2.2).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.engine.context import ExecutionContext
from repro.engine.objects import END_OF_STREAM
from repro.sim import Store
from repro.util.errors import QueryExecutionError


class Operator:
    """One physical operator of a stream query execution plan."""

    #: Registry name; subclasses set this and register in the registry module.
    name = "operator"

    def __init__(self, ctx: ExecutionContext, inputs: List[Store], output: Store):
        self.ctx = ctx
        self.inputs = inputs
        self.output = output
        self.objects_in = 0
        self.objects_out = 0
        self._validate_arity()

    #: (min, max) number of input streams; max None = unbounded.
    arity = (0, None)

    def _validate_arity(self) -> None:
        low, high = self.arity
        n = len(self.inputs)
        if n < low or (high is not None and n > high):
            raise QueryExecutionError(
                f"operator {self.name!r} takes between {low} and "
                f"{high if high is not None else 'any'} inputs, got {n}"
            )

    # ------------------------------------------------------------------
    # Live-state snapshot (the engine half of snapshot/fork)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """This operator's live execution state as plain JSON-able data.

        The base snapshot carries the progress counters every operator
        maintains; stateful subclasses (folds, sources) extend it with
        their accumulators so a migration record — or a warm-started fork —
        captures exactly what the operator had computed so far.
        """
        return {
            "name": self.name,
            "objects_in": self.objects_in,
            "objects_out": self.objects_out,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`snapshot_state` onto a freshly built operator.

        Must be called before :meth:`run` is spawned; restoring onto the
        wrong operator kind raises.
        """
        if state.get("name") != self.name:
            raise QueryExecutionError(
                f"cannot restore {state.get('name')!r} state onto "
                f"operator {self.name!r}"
            )
        self.objects_in = int(state["objects_in"])
        self.objects_out = int(state["objects_out"])

    # ------------------------------------------------------------------
    def run(self):
        """The operator's simulation process (generator).  Subclasses override."""
        raise NotImplementedError

    def emit(self, obj):
        """Push one result object downstream (generator)."""
        self.objects_out += 1
        yield self.output.put(obj)

    def finish(self):
        """Signal end-of-stream downstream (generator)."""
        yield self.output.put(END_OF_STREAM)

    def each_input_object(self):
        """Iterate the single input until EOS (generator of generators).

        Usage in a subclass::

            while True:
                obj = yield from self.next_object()
                if obj is END_OF_STREAM:
                    break
        """
        raise NotImplementedError

    def next_object(self):
        """Pull the next object from the (single) input stream (generator)."""
        if len(self.inputs) != 1:
            raise QueryExecutionError(
                f"operator {self.name!r} pulls from one input, has {len(self.inputs)}"
            )
        obj = yield self.inputs[0].get()
        if obj is not END_OF_STREAM:
            self.objects_in += 1
        return obj

    def __repr__(self) -> str:
        return f"<{type(self).__name__} in={len(self.inputs)}>"
