"""Sender and receiver stream-carrier drivers.

These are the components of the paper's Figure 3 running process that touch
the network: the **sender driver** marshals operator output into send
buffers and transmits them over a channel; the **receiver driver** accepts
wire buffers from its inbox and de-marshals them back into objects for the
operators.

Both drivers implement the single/double buffering distinction measured in
Figures 6 and 8:

* The sender owns ``slots`` send buffers (1 or 2).  Marshaling a buffer
  requires owning it; transmission returns it when the channel reports
  local completion.  With one buffer, marshal and send strictly alternate;
  with two, the CPU marshals buffer k+1 while the co-processor transmits
  buffer k.
* The receiver's :class:`~repro.engine.inbox.Inbox` holds 1 or 2 receive
  slots; the slot is returned only after de-marshaling, so with a single
  slot the network stalls while the CPU drains the buffer.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import ExecutionContext
from repro.engine.inbox import Inbox
from repro.engine.marshal import StreamDemarshaller, StreamMarshaller
from repro.engine.objects import END_OF_STREAM
from repro.net.channels import Channel
from repro.sim import Store


class SenderDriver:
    """Marshals an object stream and sends it over one channel."""

    def __init__(
        self,
        ctx: ExecutionContext,
        source: Store,
        channel: Channel,
        stream_id: str,
        buffer_bytes: Optional[int] = None,
    ):
        self.ctx = ctx
        self.source = source
        self.channel = channel
        self.stream_id = stream_id
        # TCP carriers impose their own segment size; MPI carriers use the
        # query's buffer-size setting (the Figure 6/8 experimental knob).
        self.buffer_bytes = (
            channel.preferred_buffer_bytes
            if channel.preferred_buffer_bytes is not None
            else (buffer_bytes or ctx.settings.mpi_buffer_bytes)
        )
        self.bytes_sent = 0
        self.buffers_sent = 0
        self._tokens = Store(ctx.sim, capacity=2, name=f"{stream_id}.send-tokens")
        self._outbox = Store(ctx.sim, name=f"{stream_id}.outbox")
        self._pending_since: Optional[float] = None
        # The transmit sub-process, exposed so RP termination can reach it
        # (it is detached from the driver's own process).
        self.transmit_process = None
        for _ in range(ctx.settings.driver_slots):
            self._tokens.put(None)

    def run(self):
        """Driver main process: marshal loop plus a transmit sub-process."""
        yield from self.channel.open()
        transmitter = self.ctx.sim.process(
            self._transmit(), name=f"send[{self.stream_id}]"
        )
        self.transmit_process = transmitter
        marshaller = StreamMarshaller(
            self.stream_id, self.ctx.node.node_id, self.buffer_bytes
        )
        while True:
            obj = yield from self._next_object(marshaller)
            if obj is END_OF_STREAM:
                break
            for buffer in marshaller.add(obj):
                yield from self._emit(buffer)
            if marshaller.pending_bytes and self._pending_since is None:
                self._pending_since = self.ctx.sim.now
            elif not marshaller.pending_bytes:
                self._pending_since = None
        tail = marshaller.flush()
        if tail is not None:
            yield from self._emit(tail)
        eos = marshaller.end_of_stream()
        obs = self.ctx.sim.obs
        if obs.flows.enabled:
            obs.flows.begin(eos, self.ctx.sim.now)
        yield self._tokens.get()  # own a buffer for the EOS marker too
        yield self._outbox.put(eos)
        yield transmitter  # join: all buffers transmitted
        yield from self.channel.close()

    def _next_object(self, marshaller: StreamMarshaller):
        """Wait for the next object, flushing over-age partial buffers.

        In a continuous query a low-rate stream (one aggregate per window)
        may never fill a send buffer; once the *oldest* pending byte is
        ``flush_interval`` old the partial buffer is sent, so subscribers
        see results promptly whether the stream trickles or stalls.
        """
        sim = self.ctx.sim
        get_event = self.source.get()
        while not get_event.triggered and marshaller.pending_bytes:
            assert self._pending_since is not None
            remaining = self._pending_since + self.ctx.settings.flush_interval - sim.now
            if remaining <= 0:
                tail = marshaller.flush()
                self._pending_since = None
                if tail is not None:
                    yield from self._emit(tail)
                break
            yield sim.any_of([get_event, sim.timeout(remaining)])
        obj = yield get_event
        return obj

    def _emit(self, buffer):
        """Acquire a send buffer, marshal into it, hand it to the transmitter."""
        sim = self.ctx.sim
        obs = sim.obs
        flows = obs.flows
        if flows.enabled:
            # Flow birth: the buffer exists, latency accrues from here.
            flows.begin(buffer, sim.now)
        yield self._tokens.get()
        marshal_start = sim.now if flows.enabled else 0.0
        yield from self.ctx.charge_cpu(self.ctx.marshal_cost(buffer.nbytes))
        if flows.enabled:
            # Send-token wait lands in queue_wait; the marshal interval
            # (CPU contention included) is the serialize component.
            flows.hop(
                buffer, "sender.marshal", sim.now,
                resource=f"cpu[{self.ctx.node.node_id}]",
                serialize=sim.now - marshal_start,
            )
        yield self._outbox.put(buffer)
        self.bytes_sent += buffer.nbytes
        self.buffers_sent += 1
        if obs.enabled:
            obs.add(f"stream.bytes_sent[{self.stream_id}]", buffer.nbytes)
            obs.add(f"stream.buffers_sent[{self.stream_id}]")

    def _transmit(self):
        """Send marshaled buffers in order, returning tokens on completion."""
        flows = self.ctx.sim.obs.flows
        while True:
            buffer = yield self._outbox.get()
            if flows.enabled:
                # Dwell in the outbox queue behind earlier buffers.
                flows.hop(buffer, "sender.outbox", self.ctx.sim.now)
            yield from self.channel.send(buffer)
            yield self._tokens.put(None)
            if buffer.eos:
                return


class ReceiverDriver:
    """De-marshals wire buffers from one producer into an object store."""

    def __init__(self, ctx: ExecutionContext, inbox: Inbox, output: Store, stream_id: str):
        self.ctx = ctx
        self.inbox = inbox
        self.output = output
        self.stream_id = stream_id
        self.bytes_received = 0
        self.buffers_received = 0

    def run(self):
        """Driver main process: drain inbox, de-marshal, emit objects + EOS."""
        demarshaller = StreamDemarshaller()
        sim = self.ctx.sim
        flows = sim.obs.flows
        while True:
            buffer = yield self.inbox.get()
            if buffer.eos:
                if flows.enabled:
                    flows.complete(buffer, sim.now)
                    # The stream is over: a data buffer the EOS overtook in
                    # the network can never be consumed, so its record is
                    # dropped rather than leaked in the in-flight table.
                    flows.drop_stream(self.stream_id)
                yield self.inbox.release()
                break
            if flows.enabled:
                # Dwell in the inbox between deposit and pick-up.
                flows.hop(buffer, "receiver.inbox", sim.now)
                demarshal_start = sim.now
            yield from self.ctx.charge_cpu(self.ctx.demarshal_cost(buffer.nbytes))
            if flows.enabled:
                flows.hop(
                    buffer, "receiver.demarshal", sim.now,
                    resource=f"cpu[{self.ctx.node.node_id}]",
                    processing=sim.now - demarshal_start,
                )
                flows.complete(buffer, sim.now)
            objects = demarshaller.accept(buffer)
            yield self.inbox.release()
            self.bytes_received += buffer.nbytes
            self.buffers_received += 1
            obs = self.ctx.sim.obs
            if obs.enabled:
                obs.add(f"stream.bytes_received[{self.stream_id}]", buffer.nbytes)
                obs.add(f"stream.buffers_received[{self.stream_id}]")
            for obj in objects:
                yield self.output.put(obj)
        yield self.output.put(END_OF_STREAM)
