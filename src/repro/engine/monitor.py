"""Execution monitoring: what each running process did.

The paper's Figure 3 lists "(v) monitoring the execution of its SQEP"
among an RP's responsibilities.  This module collects those observations:
per-operator object counts, per-port receive volumes, per-subscriber send
volumes, and CPU busy time, snapshotted into plain dataclasses that the
client manager attaches to the execution report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.util.units import format_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rp import RunningProcess
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class OperatorStats:
    """One operator's throughput counters."""

    name: str
    objects_in: int
    objects_out: int


@dataclass(frozen=True)
class StreamStats:
    """One stream edge's volume, as seen by a driver."""

    stream_id: str
    bytes: int
    buffers: int


@dataclass(frozen=True)
class RPStatistics:
    """Everything one running process observed about its own execution."""

    rp_id: str
    node_id: str
    operators: Tuple[OperatorStats, ...]
    received: Tuple[StreamStats, ...]
    sent: Tuple[StreamStats, ...]
    cpu_busy_time: float

    @property
    def bytes_received(self) -> int:
        return sum(s.bytes for s in self.received)

    @property
    def bytes_sent(self) -> int:
        return sum(s.bytes for s in self.sent)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.rp_id} on {self.node_id}: "
            f"cpu {self.cpu_busy_time * 1e3:.2f} ms, "
            f"in {format_bytes(self.bytes_received)}, "
            f"out {format_bytes(self.bytes_sent)}"
        ]
        for op in self.operators:
            lines.append(
                f"  {op.name}: {op.objects_in} objects in, {op.objects_out} out"
            )
        for stream in self.received:
            lines.append(
                f"  <- {stream.stream_id}: {format_bytes(stream.bytes)} "
                f"in {stream.buffers} buffers"
            )
        for stream in self.sent:
            lines.append(
                f"  -> {stream.stream_id}: {format_bytes(stream.bytes)} "
                f"in {stream.buffers} buffers"
            )
        return "\n".join(lines)

    def publish(self, metrics: "MetricsRegistry") -> None:
        """Publish these statistics into an obs metrics registry.

        Bridges the paper's RP-level monitoring (Figure 3 responsibility v)
        into the observability registry, so a ``--metrics-out`` snapshot
        carries the per-RP operator and stream counters alongside the
        substrate metrics.  Gauges, so republishing is idempotent.
        """
        prefix = f"rp.{self.rp_id}"
        metrics.set_gauge(f"{prefix}.cpu_busy_s", self.cpu_busy_time)
        metrics.set_gauge(f"{prefix}.bytes_received", self.bytes_received)
        metrics.set_gauge(f"{prefix}.bytes_sent", self.bytes_sent)
        for op in self.operators:
            metrics.set_gauge(
                f"{prefix}.operator.objects_in[{op.name}]", op.objects_in
            )
            metrics.set_gauge(
                f"{prefix}.operator.objects_out[{op.name}]", op.objects_out
            )
        for stream in self.received:
            metrics.set_gauge(
                f"{prefix}.recv.bytes[{stream.stream_id}]", stream.bytes
            )
            metrics.set_gauge(
                f"{prefix}.recv.buffers[{stream.stream_id}]", stream.buffers
            )
        for stream in self.sent:
            metrics.set_gauge(
                f"{prefix}.sent.bytes[{stream.stream_id}]", stream.bytes
            )
            metrics.set_gauge(
                f"{prefix}.sent.buffers[{stream.stream_id}]", stream.buffers
            )


def snapshot(rp: "RunningProcess") -> RPStatistics:
    """Capture the current statistics of one running process."""
    return RPStatistics(
        rp_id=rp.rp_id,
        node_id=rp.node.node_id,
        operators=tuple(
            OperatorStats(
                name=op.name, objects_in=op.objects_in, objects_out=op.objects_out
            )
            for op in rp.operators
        ),
        received=tuple(
            StreamStats(
                stream_id=port.driver.stream_id,
                bytes=port.driver.bytes_received,
                buffers=port.driver.buffers_received,
            )
            for port in rp.input_ports
        ),
        sent=tuple(
            StreamStats(
                stream_id=sender.stream_id,
                bytes=sender.bytes_sent,
                buffers=sender.buffers_sent,
            )
            for sender in rp.senders
        ),
        cpu_busy_time=rp.ctx.cpu_busy_time,
    )
