"""The SCSQ object model: what flows through streams.

"All data in SCSQ is represented by objects" (paper section 2.4).  In this
reproduction a stream element can be any Python object; what the engine
needs from it is a *size* (for communication costs) and optionally a
*payload* (for computing operators such as FFT).  Large numeric arrays —
the paper's workload — are usually represented by :class:`SyntheticArray`,
which carries only metadata so simulating a 3 MB transfer does not allocate
3 MB; workloads that need real data (FFT, grep) use real numpy arrays or
strings.

End-of-stream is signalled in-band with the :data:`END_OF_STREAM` sentinel,
mirroring the control messages the paper's RPs exchange "to terminate
execution upon a stop condition".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


class _EndOfStream:
    """Singleton sentinel marking the end of a finite stream."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<END_OF_STREAM>"


END_OF_STREAM = _EndOfStream()


@dataclass(frozen=True)
class SyntheticArray:
    """A numeric array represented by metadata only.

    The paper's bandwidth experiments stream "arrays of numerical data" of
    3 MB each; their *contents* never matter (they are only counted), so the
    simulation ships size + sequence number instead of real bytes.

    Attributes:
        nbytes: Size of the represented array in bytes.
        sequence: Position of this array in its generated stream.
    """

    nbytes: int
    sequence: int = 0


@dataclass(frozen=True)
class TaggedObject:
    """An object annotated with its originating stream and sequence number.

    Used where downstream operators must pair elements from parallel
    streams, e.g. ``radixcombine()`` matching the k-th odd-FFT with the
    k-th even-FFT result.
    """

    tag: str
    sequence: int
    payload: Any


def size_of(obj: Any) -> int:
    """Marshaled size in bytes of a stream object.

    The estimates are intentionally simple and deterministic: they feed the
    communication cost model, not a real wire format.
    """
    if obj is END_OF_STREAM:
        return 0
    if isinstance(obj, SyntheticArray):
        return obj.nbytes
    if isinstance(obj, TaggedObject):
        return 16 + size_of(obj.payload)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, complex):
        return 16
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return 8 + sum(size_of(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(size_of(k) + size_of(v) for k, v in obj.items())
    if obj is None:
        return 1
    # Fallback for unanticipated types: a fixed conservative size.
    return 64
