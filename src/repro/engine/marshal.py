"""Marshaling of object streams into wire buffers, and back.

The paper's running process (section 2.3): "the objects resulting from the
operators are passed on to the sender driver, which marshals them and sends
the buffer contents to subscribers"; incoming data "is buffered in a
receiver driver and de-marshaled (materialized) into objects".

:class:`StreamMarshaller` packs a sequence of objects into fixed-size
:class:`~repro.net.message.WireBuffer` instances.  An object larger than
the buffer is split into *fragments* (a 3 MB array sent with 1 KB buffers
becomes 3000 fragments); several small objects share one buffer.  The
symmetric :class:`StreamDemarshaller` reassembles objects, tolerating
fragment arrival in any order within a stream.

These classes are pure bookkeeping — the *time* cost of marshaling is
charged by the drivers via :class:`~repro.net.params.CpuCostParams`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional

from repro.engine.objects import size_of
from repro.net.message import Fragment, WireBuffer
from repro.util.errors import SimulationError


class StreamMarshaller:
    """Packs stream objects into wire buffers of at most ``buffer_bytes``."""

    def __init__(self, stream_id: str, source: str, buffer_bytes: int):
        if buffer_bytes < 1:
            raise SimulationError(f"buffer size must be >= 1 byte, got {buffer_bytes}")
        self.stream_id = stream_id
        self.source = source
        self.buffer_bytes = buffer_bytes
        self._object_ids = itertools.count()
        self._pending: List[Fragment] = []
        self._pending_bytes = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes currently accumulated in the open (unflushed) buffer."""
        return self._pending_bytes

    def add(self, obj: Any) -> Iterator[WireBuffer]:
        """Add one object; yields every buffer that fills up as a result."""
        object_id = next(self._object_ids)
        remaining = size_of(obj)
        if remaining == 0:
            remaining = 1  # every object occupies at least one byte on the wire
        total_fragments = self._count_fragments(remaining)
        index = 0
        while remaining > 0:
            room = self.buffer_bytes - self._pending_bytes
            take = min(room, remaining)
            remaining -= take
            is_last = remaining == 0
            self._pending.append(
                Fragment(
                    object_id=object_id,
                    index=index,
                    total=total_fragments,
                    nbytes=take,
                    payload=obj if is_last else None,
                )
            )
            self._pending_bytes += take
            index += 1
            if self._pending_bytes >= self.buffer_bytes:
                yield self._flush()

    def _count_fragments(self, nbytes: int) -> int:
        """How many fragments an object of ``nbytes`` will span."""
        room = self.buffer_bytes - self._pending_bytes
        if nbytes <= room:
            return 1
        return 1 + -(-(nbytes - room) // self.buffer_bytes)

    def flush(self) -> Optional[WireBuffer]:
        """Emit the partially filled buffer, if any."""
        if not self._pending:
            return None
        return self._flush()

    def end_of_stream(self) -> WireBuffer:
        """The end-of-stream marker buffer (flush any remainder first)."""
        if self._pending:
            raise SimulationError("flush() the marshaller before ending the stream")
        return WireBuffer.end_of_stream(self.stream_id, self.source)

    def _flush(self) -> WireBuffer:
        buffer = WireBuffer.data(
            self.stream_id, self.source, self._pending_bytes, self._pending
        )
        self._pending = []
        self._pending_bytes = 0
        return buffer


class StreamDemarshaller:
    """Reassembles objects from the wire buffers of one stream."""

    def __init__(self):
        self._received: Dict[int, int] = {}  # object_id -> fragments seen
        self._payloads: Dict[int, Any] = {}
        self.objects_out = 0
        self.bytes_in = 0

    def accept(self, buffer: WireBuffer) -> List[Any]:
        """Consume one buffer; returns the objects completed by it, in order."""
        if buffer.eos:
            if self._received:
                raise SimulationError(
                    f"stream {buffer.stream_id!r} ended with "
                    f"{len(self._received)} partially received objects"
                )
            return []
        self.bytes_in += buffer.nbytes
        completed: List[Any] = []
        for fragment in buffer.fragments:
            seen = self._received.get(fragment.object_id, 0) + 1
            self._received[fragment.object_id] = seen
            if fragment.payload is not None or fragment.is_last:
                self._payloads[fragment.object_id] = fragment.payload
            if seen == fragment.total:
                completed.append(self._payloads.pop(fragment.object_id))
                del self._received[fragment.object_id]
                self.objects_out += 1
        return completed
