"""Query control: stopping continuous queries.

"The execution of CQs may be stopped either by explicit user intervention
or by a stop condition in the query that makes the stream finite.  When a
CQ is stopped, its RPs are terminated.  RPs regularly exchange control
messages, which are used to regulate the stream flow between them and to
terminate execution upon a stop condition." (paper section 2.2)

Flow regulation is carried by the bounded stores and window tokens
(back-pressure); this module provides the *termination* path: a
:class:`StopToken` the client manager arms, which interrupts every running
process of the query at a simulated deadline or on demand.  Interrupting a
process releases any resource it holds (the drivers' ``with`` requests),
so a stopped query leaves the simulated hardware clean.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.sim import Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rp import RunningProcess
    from repro.sim.core import Simulator
    from repro.sim.events import Process


#: Simulated latency of one inter-RP control message (stop-condition
#: cancellation, subscriber removal).  Small against any data transfer.
CONTROL_MESSAGE_LATENCY = 100e-6


class StopToken:
    """A handle that terminates a running continuous query."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._rps: List["RunningProcess"] = []
        self.stopped = False
        self.stop_time: float = float("nan")
        #: Triggered at the moment the query is stopped; the client manager
        #: races this against normal completion.
        self.event = sim.event()
        self._watchdog: Optional["Process"] = None

    def attach(self, rps: Iterable["RunningProcess"]) -> None:
        """Register the running processes this token controls."""
        self._rps.extend(rps)

    def stop(self) -> None:
        """Terminate every attached RP at the current simulated time.

        Idempotent; interrupting each live process mirrors the control
        message that "terminates execution upon a stop condition".
        """
        if self.stopped:
            return
        self.stopped = True
        self.stop_time = self.sim.now
        for rp in self._rps:
            rp.terminate()
        self.event.succeed()

    def stop_at(self, deadline: float) -> None:
        """Arm a watchdog that stops the query at simulated ``deadline``."""

        def watchdog():
            remaining = deadline - self.sim.now
            try:
                if remaining > 0:
                    yield self.sim.timeout(remaining)
            except Interrupt:
                return  # query completed first; stand down
            self.stop()

        self._watchdog = self.sim.process(watchdog(), name="stop-watchdog")

    def cancel(self) -> None:
        """Stand the watchdog down (the query completed on its own)."""
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.interrupt("query completed")


def swallow_interrupt(error: BaseException) -> bool:
    """True if ``error`` is the expected consequence of a query stop."""
    return isinstance(error, Interrupt)
