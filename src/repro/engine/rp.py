"""Running processes: the executable unit of a continuous query.

A running process (RP) executes the subquery of one stream process on one
node (paper Figure 3).  It owns:

* the physical operators instantiated from its SQEP,
* one receiver driver + inbox per subscription (``input`` plan leaf),
* one sender driver per *subscriber* (an RP that extracts its output) —
  splitting a stream to several subscribers fans the result out to all of
  them, which is how the paper's radix2 query consumes ``extract(c)``
  twice,
* statistics used by the measurement harness.

The wiring between RPs (who subscribes to whom, over which channel) is done
by the coordinator layer before :meth:`RunningProcess.start`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.context import ExecutionContext
from repro.engine.drivers import ReceiverDriver, SenderDriver
from repro.engine.inbox import Inbox
from repro.engine.objects import END_OF_STREAM
from repro.engine.operators.base import Operator
from repro.engine.operators.registry import operator_class
from repro.engine.settings import ExecutionSettings
from repro.engine.sqep import INPUT, OpSpec
from repro.hardware.environment import Environment
from repro.hardware.node import Node
from repro.sim import Interrupt, Store
from repro.util.errors import QueryExecutionError


class InputPort:
    """A subscription of this RP to another stream process's output."""

    def __init__(self, producer_sp: str, inbox: Inbox, driver: ReceiverDriver):
        self.producer_sp = producer_sp
        self.inbox = inbox
        self.driver = driver
        # Filled at wiring time: the producer RP and the sender driver that
        # feeds this port, so stop-condition cancellation can reach back.
        self.upstream = None  # Optional[Tuple[RunningProcess, SenderDriver]]
        self.driver_process = None
        self.cancelled = False


class RunningProcess:
    """One running process executing a SQEP on a node."""

    def __init__(
        self,
        rp_id: str,
        env: Environment,
        node: Node,
        plan: OpSpec,
        settings: ExecutionSettings,
    ):
        self.rp_id = rp_id
        self.env = env
        self.node = node
        self.plan = plan
        self.settings = settings
        self.ctx = ExecutionContext(env, node, settings)
        self.operators: List[Operator] = []
        self.input_ports: List[InputPort] = []
        self.senders: List[SenderDriver] = []
        self.result_store: Optional[Store] = None
        self._subscriber_stores: List[Store] = []
        self._sender_processes: dict = {}
        self._sender_stores: dict = {}
        self._cancelled_senders: set = set()
        self._cancelled_stores: set = set()
        self._cancelled = False
        self._root_process = None
        self._processes: list = []
        self._built = False
        self._started = False
        self._failure = None
        self._node_released = False
        node.acquire()

    # ------------------------------------------------------------------
    # Build: instantiate the SQEP against stores and drivers
    # ------------------------------------------------------------------
    def build(self) -> List[InputPort]:
        """Instantiate operators and receiver drivers; returns the inputs
        that still need wiring to their producers."""
        if self._built:
            raise QueryExecutionError(f"RP {self.rp_id} already built")
        self._built = True
        self.result_store = self._build_node(self.plan)
        return self.input_ports

    def _build_node(self, spec: OpSpec) -> Store:
        depth = self.settings.operator_queue_depth
        output = Store(self.ctx.sim, capacity=depth, name=f"{self.rp_id}:{spec.name}.out")
        if spec.name == INPUT:
            inbox = Inbox(
                self.ctx.sim,
                slots=self.settings.driver_slots,
                name=f"{self.rp_id}<-{spec.producer}",
            )
            driver = ReceiverDriver(
                self.ctx, inbox, output, stream_id=f"{spec.producer}->{self.rp_id}"
            )
            assert spec.producer is not None
            self.input_ports.append(InputPort(spec.producer, inbox, driver))
            return output
        inputs = [self._build_node(child) for child in spec.children]
        cls = operator_class(spec.name)
        operator = cls(self.ctx, inputs, output, *spec.args, **spec.kwargs_dict)
        self.operators.append(operator)
        return output

    # ------------------------------------------------------------------
    # Wiring: subscribers attach before start
    # ------------------------------------------------------------------
    def add_subscriber(self, subscriber_rp: "RunningProcess", inbox: Inbox) -> None:
        """Attach a subscriber: this RP's output will stream to ``inbox``."""
        if self._started:
            raise QueryExecutionError(f"RP {self.rp_id}: cannot subscribe after start")
        source = Store(
            self.ctx.sim,
            capacity=self.settings.operator_queue_depth,
            name=f"{self.rp_id}->{subscriber_rp.rp_id}.feed",
        )
        stream_id = f"{self.rp_id}->{subscriber_rp.rp_id}"
        channel = self.env.open_channel(self.node, subscriber_rp.node, inbox, stream_id)
        sender = SenderDriver(self.ctx, source, channel, stream_id)
        self.senders.append(sender)
        self._subscriber_stores.append(source)
        self._sender_stores[sender] = source
        # Backlink so the subscriber can cancel this subscription later.
        for port in subscriber_rp.input_ports:
            if port.inbox is inbox:
                port.upstream = (self, sender)
                break

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self, failure=None) -> None:
        """Spawn all of this RP's simulation processes.

        Args:
            failure: Optional event to fail with the first exception any of
                this RP's processes raises (interrupts excluded), so the
                query's driver can abort promptly instead of deadlocking on
                a stream that will never end.
        """
        if not self._built:
            raise QueryExecutionError(f"RP {self.rp_id}: build() before start()")
        if self._started:
            raise QueryExecutionError(f"RP {self.rp_id} already started")
        self._started = True
        self._failure = failure
        sim = self.ctx.sim
        for operator in self.operators:
            process = sim.process(operator.run(), name=f"{self.rp_id}:{operator.name}")
            self._processes.append(process)
            self._root_process = process  # operators are built children-first
        for port in self.input_ports:
            port.driver_process = sim.process(
                port.driver.run(), name=f"{self.rp_id}:recv[{port.producer_sp}]"
            )
            self._processes.append(port.driver_process)
        if not self.operators and self.input_ports:
            # Plan root is a bare subscription: the receiver produces the result.
            self._root_process = self.input_ports[0].driver_process
        if self.senders:
            self._processes.append(
                sim.process(self._fan_out(), name=f"{self.rp_id}:fanout")
            )
            for sender in self.senders:
                process = sim.process(
                    sender.run(), name=f"{self.rp_id}:{sender.stream_id}"
                )
                self._processes.append(process)
                self._sender_processes[sender] = process
        if self._root_process is not None and self.input_ports:
            # Stop-condition supervision: when the result stream completes
            # while subscriptions are still live (e.g. a first() operator),
            # cancel the leftovers and notify the producers (section 2.2's
            # control messages).
            self._processes.append(
                sim.process(self._supervise(), name=f"{self.rp_id}:supervisor")
            )
        if failure is not None:
            for process in self._processes:
                process._add_callback(self._report_failure)

    def _report_failure(self, event) -> None:
        """Forward a process's crash to the query-level failure event."""
        if event._ok or isinstance(event._value, Interrupt):
            return
        event._defused = True  # the failure is handled at query level
        if self._failure is not None and not self._failure.triggered:
            self._failure.fail(event._value)

    def _fan_out(self):
        """Copy the result stream to every subscriber's sender feed."""
        assert self.result_store is not None
        while True:
            obj = yield self.result_store.get()
            for store in self._subscriber_stores:
                if store in self._cancelled_stores:
                    continue  # subscriber was cancelled by a stop condition
                yield store.put(obj)
            if obj is END_OF_STREAM:
                return

    # ------------------------------------------------------------------
    # Stop-condition cancellation (paper section 2.2 control messages)
    # ------------------------------------------------------------------
    def _supervise(self):
        """Cancel leftover subscriptions once the result stream completed."""
        try:
            yield self._root_process
        except Interrupt:
            return  # the whole query was terminated; nothing to supervise
        except Exception:
            return  # root failure is routed through the failure event
        if self._cancelled:
            return
        live = [
            port
            for port in self.input_ports
            if port.driver_process is not None
            and port.driver_process.is_alive
            and not port.cancelled
        ]
        if live:
            yield from self._cancel_ports(live)

    def _cancel_ports(self, ports):
        """Tear down input subscriptions and notify their producers."""
        from repro.engine.control import CONTROL_MESSAGE_LATENCY

        sim = self.ctx.sim
        for port in ports:
            port.cancelled = True
            process = port.driver_process
            if process is not None and process.is_alive:
                process.interrupt("stop condition")
                process._add_callback(lambda event: setattr(event, "_defused", True))
        # One control round trip to the producers.
        yield sim.timeout(CONTROL_MESSAGE_LATENCY)
        for port in ports:
            if port.upstream is not None:
                producer, sender = port.upstream
                producer.cancel_subscriber(sender)

    def cancel_subscriber(self, sender: SenderDriver) -> None:
        """Handle a subscriber's cancellation control message.

        The sender feeding that subscriber is stopped; if no subscriber
        remains, this whole RP is cancelled and the cancellation cascades
        to *its* producers — so an unbounded source upstream of a satisfied
        stop condition terminates.
        """
        if sender in self._cancelled_senders:
            return
        self._cancelled_senders.add(sender)
        process = self._sender_processes.get(sender)
        if process is not None and process.is_alive:
            process.interrupt("subscriber cancelled")
            process._add_callback(lambda event: setattr(event, "_defused", True))
        store = self._sender_stores.get(sender)
        if store is not None:
            self._cancelled_stores.add(store)
            # Unblock (and keep draining) any pending fan-out put.
            self.ctx.sim.process(self._drain(store), name=f"{self.rp_id}:drain")
        if len(self._cancelled_senders) == len(self.senders) and not self._cancelled:
            self._cancelled = True
            # No subscriber left: stop producing and cascade upstream.
            for proc in self._processes:
                if proc.is_alive and proc is not None:
                    proc.interrupt("no subscribers left")
                    proc._add_callback(lambda event: setattr(event, "_defused", True))
            live = [
                port
                for port in self.input_ports
                if port.upstream is not None and not port.cancelled
            ]
            if live:
                self.ctx.sim.process(
                    self._cancel_ports(live), name=f"{self.rp_id}:cascade"
                )

    @staticmethod
    def _drain(store: Store):
        """Discard everything a cancelled subscriber's feed receives."""
        while True:
            yield store.get()

    def terminate(self) -> None:
        """Interrupt every live process of this RP (query stop).

        Mirrors the control message that "terminates execution upon a stop
        condition": operator and driver processes receive an Interrupt at
        the current simulated time; resources held through ``with`` blocks
        are released on unwind.  Detached network activity is cut loose
        too: inboxes close so in-flight deliveries drop instead of wedging
        the destination co-processor, and outgoing carriers abort so their
        ingress coordination state stops taxing later deployments.
        """
        transmitters = [
            sender.transmit_process
            for sender in self.senders
            if sender.transmit_process is not None
        ]
        for process in self._processes + transmitters:
            if process.is_alive:
                process.interrupt("query stopped")
                # The interruption is intentional; nobody will re-raise it.
                process._add_callback(lambda event: setattr(event, "_defused", True))
        for port in self.input_ports:
            port.inbox.close()
        for sender in self.senders:
            sender.channel.abort()

    def join(self):
        """Generator: wait for every process of this RP to finish.

        Tolerates processes that ended by interruption (terminated query).
        """
        for process in self._processes:
            try:
                yield process
            except Interrupt:
                pass
        self.release_node()

    def release_node(self) -> None:
        """Return this RP's node slot to the CNDB (idempotent).

        Called by :meth:`join` on normal completion and by deployment
        teardown for RPs that never joined (crashed or stopped queries), so
        the environment can host further deployments.
        """
        if not self._node_released:
            self._node_released = True
            self.node.release()

    # ------------------------------------------------------------------
    # Live-state snapshot (the engine half of snapshot/fork)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """This RP's live SQEP state as plain data (no sim references).

        Captures every operator's :meth:`~repro.engine.operators.base.
        Operator.snapshot_state` (in build order, i.e. children first) plus
        the driver byte counters, so a migration record — or a warm-started
        fork — knows exactly how far this RP had progressed.  Pure: the RP
        keeps running.
        """
        return {
            "rp_id": self.rp_id,
            "node": self.node.node_id,
            "operators": [op.snapshot_state() for op in self.operators],
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }

    def restore_state(self, state: dict) -> None:
        """Warm-start this (built, not yet started) RP from a snapshot.

        Operator states are restored positionally — the RP must execute the
        same SQEP the snapshot was taken from.  Driver byte counters are
        *not* restored: they count this incarnation's wire activity.
        """
        if self._started:
            raise QueryExecutionError(
                f"RP {self.rp_id}: restore_state() must precede start()"
            )
        if not self._built:
            raise QueryExecutionError(
                f"RP {self.rp_id}: build() before restore_state()"
            )
        snapshots = state["operators"]
        if len(snapshots) != len(self.operators):
            raise QueryExecutionError(
                f"RP {self.rp_id}: snapshot has {len(snapshots)} operator "
                f"state(s), plan builds {len(self.operators)}"
            )
        for operator, snapshot_data in zip(self.operators, snapshots):
            operator.restore_state(snapshot_data)

    # ------------------------------------------------------------------
    # Census (the engine half of the leak/liveness sanitizer)
    # ------------------------------------------------------------------
    @property
    def node_released(self) -> bool:
        """True once this RP's node slot went back to its CNDB."""
        return self._node_released

    def live_processes(self) -> list:
        """Every kernel process of this RP that is still alive.

        Includes the senders' transmit processes: they outlive a normal
        driver shutdown only when a carrier wedged, which is exactly what
        the sanitizer is looking for.
        """
        transmitters = [
            sender.transmit_process
            for sender in self.senders
            if sender.transmit_process is not None
        ]
        return [
            process
            for process in self._processes + transmitters
            if process.is_alive
        ]

    def kernel_stores(self) -> List[Store]:
        """Every kernel store this RP's processes block on.

        Operator queues, subscriber feeds, sender hand-off stores, and the
        input inbox pools — the population the liveness analyzer classifies
        bare wait events against.
        """
        stores: List[Store] = []
        if self.result_store is not None:
            stores.append(self.result_store)
        stores.extend(self._subscriber_stores)
        stores.extend(self._sender_stores.values())
        for port in self.input_ports:
            stores.extend(port.inbox.kernel_stores())
        return stores

    def census(self) -> dict:
        """Quiescence-relevant state of this RP as plain data.

        Read by the leak sanitizer after teardown: a quiescent RP has no
        live processes, only closed inboxes, no blocked store getters, and
        a released node slot.
        """
        return {
            "rp_id": self.rp_id,
            "live_processes": [p.name for p in self.live_processes()],
            "open_inboxes": [
                port.inbox.name
                for port in self.input_ports
                if not port.inbox.closed
            ],
            "pending_gets": sum(
                store.pending_gets for store in self.kernel_stores()
            ),
            "node_released": self._node_released,
        }

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.senders)

    @property
    def bytes_received(self) -> int:
        return sum(p.driver.bytes_received for p in self.input_ports)

    def __repr__(self) -> str:
        return f"<RP {self.rp_id} on {self.node.node_id} root={self.plan.name}>"
