"""The SCSQ stream engine: objects, marshaling, drivers, operators, RPs.

This package implements the running process of the paper's Figure 3: a
SQEP interpreted by operator processes, fed by receiver drivers and drained
by sender drivers, with single- or double-buffered stream carriers.
"""

from repro.engine.context import ExecutionContext
from repro.engine.control import StopToken
from repro.engine.drivers import ReceiverDriver, SenderDriver
from repro.engine.inbox import Inbox
from repro.engine.monitor import OperatorStats, RPStatistics, StreamStats, snapshot
from repro.engine.marshal import StreamDemarshaller, StreamMarshaller
from repro.engine.objects import (
    END_OF_STREAM,
    SyntheticArray,
    TaggedObject,
    size_of,
)
from repro.engine.rp import InputPort, RunningProcess
from repro.engine.settings import ExecutionSettings
from repro.engine.sqep import INPUT, OpSpec, plan_input, plan_op

__all__ = [
    "ExecutionContext",
    "StopToken",
    "RPStatistics",
    "OperatorStats",
    "StreamStats",
    "snapshot",
    "SenderDriver",
    "ReceiverDriver",
    "Inbox",
    "StreamMarshaller",
    "StreamDemarshaller",
    "END_OF_STREAM",
    "SyntheticArray",
    "TaggedObject",
    "size_of",
    "RunningProcess",
    "InputPort",
    "ExecutionSettings",
    "OpSpec",
    "INPUT",
    "plan_input",
    "plan_op",
]
