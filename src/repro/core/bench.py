"""The perf-regression gate: BENCH JSON recording and baseline comparison.

``python -m repro bench`` runs a fast, deterministic subset of the paper's
figure sweeps with flow tracing enabled and records three families of
metrics:

* ``<point>/mbps`` — mean measured bandwidth (higher is better), the
  quantity the paper's figures plot;
* ``<point>/p50_ms`` and ``<point>/p95_ms`` — per-buffer end-to-end flow
  latency percentiles in milliseconds (lower is better), from the flow
  recorder's completed records pooled over the repeats;
* ``<figure>/wall_s`` and ``<figure>/events_per_sec`` — host wall-clock
  time and simulator event throughput per figure subset (lower / higher is
  better), the quantities the DES kernel optimizations move.

The direction of a metric is carried by its name suffix, so a baseline
file stays self-describing: ``…/mbps`` regresses when it *drops* below
baseline by more than the tolerance; ``…_ms`` and ``…_s`` regress when
they *rise* (``events_per_sec`` ends in neither and is higher-is-better).

The simulated metrics are seeded (repeat k uses seed k), so on one code
revision the recorded numbers are bit-identical run to run; any drift
against a committed ``BENCH_baseline.json`` is a code change, not noise.
The wall-clock family is *host-dependent* — it varies with the machine and
its load — so it is compared under a much wider tolerance
(:data:`WALL_CLOCK_TOLERANCE_PCT`) and is best consumed as a warn-only
trend line in CI, not a hard gate.

Workflow::

    python -m repro bench --out BENCH_baseline.json       # record baseline
    python -m repro bench --baseline BENCH_baseline.json  # gate (exit 1 on
                                                          #  regression)
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.experiments.fig6 import point_to_point_query, scaled_workload
from repro.core.experiments.fig8 import BALANCED, SEQUENTIAL, merge_query
from repro.core.experiments.fig15 import inbound_query
from repro.core.measurement import measure_query_bandwidth
from repro.core.parallel import OBSERVE_FLOWS
from repro.engine.settings import ExecutionSettings
from repro.util.stats import percentile

#: Schema version of the BENCH JSON document.
BENCH_FORMAT_VERSION = 2

#: Default regression tolerance, percent of the baseline value.
DEFAULT_TOLERANCE_PCT = 5.0

#: Tolerance for host wall-clock metrics (``…/wall_s``,
#: ``…/events_per_sec``): these vary with the machine running the bench,
#: so only a gross collapse should trip the gate.
WALL_CLOCK_TOLERANCE_PCT = 50.0


@dataclass(frozen=True)
class BenchPoint:
    """One benchmarked query configuration."""

    name: str
    query: str
    payload_bytes: int
    settings: ExecutionSettings

    @property
    def figure(self) -> str:
        """The figure subset the point belongs to (e.g. ``"fig6"``)."""
        return self.name.split("[", 1)[0]


def bench_points() -> List[BenchPoint]:
    """The fast figure-sweep subset the gate measures.

    One point per mechanism the repo models: packet quantisation (fig6
    small vs large buffers), intermediate-co-processor routing (fig8
    sequential vs balanced), and the Ethernet ingress with and without
    I/O-node sharing (fig15 Q5 at n=4 vs n=5, Q1 at n=2).
    """
    points: List[BenchPoint] = []
    for buffer_bytes in (200, 1000, 100_000):
        array_bytes, count = scaled_workload(buffer_bytes, target_buffers=120)
        points.append(BenchPoint(
            name=f"fig6[B={buffer_bytes},double]",
            query=point_to_point_query(array_bytes, count),
            payload_bytes=array_bytes * count,
            settings=ExecutionSettings(
                mpi_buffer_bytes=buffer_bytes, double_buffering=True
            ),
        ))
    array_bytes, count = scaled_workload(100_000, target_buffers=120)
    for label, (x, y) in (("seq", SEQUENTIAL), ("bal", BALANCED)):
        points.append(BenchPoint(
            name=f"fig8[B=100000,{label},double]",
            query=merge_query(array_bytes, count, x, y),
            payload_bytes=2 * array_bytes * count,
            settings=ExecutionSettings(
                mpi_buffer_bytes=100_000, double_buffering=True
            ),
        ))
    for query_number, n in ((1, 2), (5, 4), (5, 5)):
        points.append(BenchPoint(
            name=f"fig15[Q{query_number},n={n}]",
            query=inbound_query(query_number, n, 300_000, 3),
            payload_bytes=n * 300_000 * 3,
            settings=ExecutionSettings(),
        ))
    return points


#: Figure names run_bench() can produce (the sweep subsets plus the
#: kernel-scale and adaptive-runtime figures); the bench CLI's ``--only``
#: validates against this.
BENCH_FIGURES = ("fig6", "fig8", "fig15", "scale", "adaptive")


def run_bench(
    repeats: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    figures: Optional[Iterable[str]] = None,
    scale_shape: Optional[Tuple[int, int, int]] = None,
) -> Dict[str, float]:
    """Measure every bench point; returns the flat metric mapping.

    With ``jobs > 1`` the repeats of each point fan out over worker
    processes; the simulated metrics (mbps, latency percentiles) are
    bit-identical either way.  The wall-clock family then measures the
    *parallel* harness, so baselines should be recorded at the same
    ``jobs`` they are gated at.

    ``figures`` restricts the run to a subset of :data:`BENCH_FIGURES`
    (``None`` runs everything); ``scale_shape`` overrides the scale
    figure's torus (CI smoke runs a reduced 8x8x8).
    """
    if figures is not None:
        figures = set(figures)
        unknown = figures - set(BENCH_FIGURES)
        if unknown:
            raise ValueError(
                f"unknown bench figure(s) {sorted(unknown)}; "
                f"expected a subset of {list(BENCH_FIGURES)}"
            )
    metrics: Dict[str, float] = {}
    wall_by_figure: Dict[str, float] = {}
    events_by_figure: Dict[str, float] = {}
    for point in bench_points():
        if figures is not None and point.figure not in figures:
            continue
        started = time.perf_counter()
        result = measure_query_bandwidth(
            point.query,
            point.payload_bytes,
            settings=point.settings,
            repeats=repeats,
            jobs=jobs,
            observe=OBSERVE_FLOWS,
        )
        wall = time.perf_counter() - started
        events = sum(
            report.metrics.counter("sim.events_processed")
            for report in result.reports
            if report.metrics is not None
        )
        figure = point.figure
        wall_by_figure[figure] = wall_by_figure.get(figure, 0.0) + wall
        events_by_figure[figure] = events_by_figure.get(figure, 0.0) + events
        latencies = [
            latency
            for obs in result.observations
            for latency in obs.flows.latencies()
        ]
        metrics[f"{point.name}/mbps"] = result.mean_mbps
        if latencies:
            metrics[f"{point.name}/p50_ms"] = percentile(latencies, 50.0) * 1e3
            metrics[f"{point.name}/p95_ms"] = percentile(latencies, 95.0) * 1e3
        if progress is not None:
            progress(f"{point.name}: {result.mean_mbps:.1f} Mbps, "
                     f"{len(latencies)} flows, {wall:.2f} s wall")
    for figure, wall in sorted(wall_by_figure.items()):
        metrics[f"{figure}/wall_s"] = wall
        if wall > 0.0:
            metrics[f"{figure}/events_per_sec"] = events_by_figure[figure] / wall
    if figures is None or "scale" in figures:
        # Imported here: the scale experiment pulls in the multiquery
        # session machinery, which the figure-sweep subsets don't need.
        from repro.core.experiments.scale import DEFAULT_SHAPE, run_scale

        scale_result = run_scale(
            shape=scale_shape if scale_shape is not None else DEFAULT_SHAPE,
            progress=progress,
        )
        metrics.update(scale_result.metrics())
    if figures is None or "adaptive" in figures:
        from repro.core.experiments.adaptive import (
            ADAPTIVE_POINTS,
            run_adaptive_point,
        )

        started = time.perf_counter()
        for point_name in ADAPTIVE_POINTS:
            comparison = run_adaptive_point(point_name, smoke=True)
            tag = f"adaptive[{point_name}]"
            metrics[f"{tag}/static_mbps"] = comparison.static_mbps
            metrics[f"{tag}/adaptive_mbps"] = comparison.adaptive_mbps
            metrics[f"{tag}/recover_s"] = comparison.recover_s
            metrics[f"{tag}/migrations"] = float(len(comparison.migrations))
            if progress is not None:
                progress(
                    f"{tag}: {comparison.static_mbps:.1f} -> "
                    f"{comparison.adaptive_mbps:.1f} Mbps "
                    f"(x{comparison.speedup:.2f}, "
                    f"{len(comparison.migrations)} migration(s))"
                )
        metrics["adaptive/wall_s"] = time.perf_counter() - started
    return metrics


# ----------------------------------------------------------------------
# BENCH JSON round trip
# ----------------------------------------------------------------------
def bench_document(metrics: Dict[str, float], repeats: int,
                   series: Optional[Dict[str, dict]] = None) -> dict:
    document = {
        "version": BENCH_FORMAT_VERSION,
        "repeats": repeats,
        "metrics": metrics,
    }
    if series:
        # Windowed live-telemetry series (per query/round p50/p95/p99,
        # throughput, health events).  Informational: load_bench reads
        # only "metrics", so the regression gate stays on the scalars.
        document["series"] = series
    return document


def write_bench(path: str, metrics: Dict[str, float], repeats: int,
                series: Optional[Dict[str, dict]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bench_document(metrics, repeats, series), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: str) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("version")
    if version != BENCH_FORMAT_VERSION:
        raise ValueError(
            f"unsupported BENCH format version {version!r} in {path} "
            f"(expected {BENCH_FORMAT_VERSION})"
        )
    return {str(k): float(v) for k, v in document["metrics"].items()}


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def figure_of_metric(metric_name: str) -> str:
    """The figure a metric belongs to.

    ``"fig6[B=200,double]/mbps"`` and ``"fig6/wall_s"`` both map to
    ``"fig6"``; the bench CLI uses this to subset a committed baseline
    when gating a ``--only`` run.
    """
    return metric_name.split("[", 1)[0].split("/", 1)[0]


def higher_is_better(metric_name: str) -> bool:
    """Metric direction by name suffix: bandwidth and throughput up,
    latency and wall time down.

    ``…_ms`` and ``…_s`` are durations (lower is better); everything else
    — ``…/mbps``, ``…/events_per_sec`` — is a rate (higher is better).
    """
    return not (metric_name.endswith("_ms") or metric_name.endswith("_s"))


def is_wall_clock(metric_name: str) -> bool:
    """Whether a metric measures host time (noisy) rather than simulated
    behaviour (deterministic)."""
    return metric_name.endswith("/wall_s") or metric_name.endswith("/events_per_sec")


@dataclass(frozen=True)
class MetricDelta:
    """Comparison of one metric against the baseline."""

    name: str
    baseline: float
    current: Optional[float]
    tolerance_pct: float

    @property
    def delta_pct(self) -> Optional[float]:
        """Signed change in percent of baseline (positive = increased)."""
        if self.current is None or self.baseline == 0.0:
            return None
        return 100.0 * (self.current - self.baseline) / abs(self.baseline)

    @property
    def regressed(self) -> bool:
        if self.current is None:
            return True  # the metric disappeared: treat as a regression
        margin = abs(self.baseline) * self.tolerance_pct / 100.0
        if higher_is_better(self.name):
            return self.current < self.baseline - margin
        return self.current > self.baseline + margin

    def describe(self) -> str:
        direction = "higher=better" if higher_is_better(self.name) else "lower=better"
        if self.current is None:
            return f"{self.name}: MISSING from current run (baseline {self.baseline:g})"
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name}: {self.baseline:g} -> {self.current:g} "
            f"({self.delta_pct:+.2f}%, {direction}, "
            f"tol {self.tolerance_pct:g}%) {verdict}"
        )


def compare_bench(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
    wall_clock_tolerance_pct: float = WALL_CLOCK_TOLERANCE_PCT,
) -> Tuple[List[MetricDelta], List[str]]:
    """Compare a run against a baseline.

    Simulated metrics are gated at ``tolerance_pct``; wall-clock metrics
    (:func:`is_wall_clock`) at the much wider ``wall_clock_tolerance_pct``
    since they depend on the host running the bench.

    Returns:
        ``(deltas, new_metrics)``: one delta per baseline metric (missing
        current values count as regressions), plus the names of metrics
        present only in the current run (informational — a widened sweep
        is not a regression, but the baseline should be re-recorded).
    """
    deltas = [
        MetricDelta(
            name=name,
            baseline=value,
            current=current.get(name),
            tolerance_pct=(
                wall_clock_tolerance_pct if is_wall_clock(name) else tolerance_pct
            ),
        )
        for name, value in sorted(baseline.items())
    ]
    new_metrics = sorted(set(current) - set(baseline))
    return deltas, new_metrics


def format_comparison(deltas: List[MetricDelta], new_metrics: List[str]) -> str:
    lines = [delta.describe() for delta in deltas]
    for name in new_metrics:
        lines.append(f"{name}: new metric (not in baseline)")
    regressions = sum(1 for d in deltas if d.regressed)
    lines.append(
        f"=> {regressions} regression(s) across {len(deltas)} baseline metric(s)"
        if regressions
        else f"=> no regressions across {len(deltas)} baseline metric(s)"
    )
    return "\n".join(lines)
