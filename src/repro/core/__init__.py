"""Core: the paper's contribution surface and its measurement harness.

Everything a user of the reproduction needs: sessions speak SCSQL with
stream processes as first-class objects (:mod:`repro.scsql`), the
measurement harness runs queries under the paper's five-repeat protocol,
and :mod:`repro.core.experiments` regenerates every measured figure.
"""

from repro.core.measurement import (
    DEFAULT_REPEATS,
    BandwidthResult,
    measure_query_bandwidth,
)
from repro.core.multiquery import (
    MultiQueryResult,
    MultiQuerySession,
    QueryOutcome,
)

__all__ = [
    "measure_query_bandwidth",
    "BandwidthResult",
    "DEFAULT_REPEATS",
    "MultiQuerySession",
    "MultiQueryResult",
    "QueryOutcome",
]
