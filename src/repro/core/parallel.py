"""Parallel execution of independent sweep points.

Every figure in the paper is a sweep of *independent* simulations — each
(sweep-point, repeat) pair runs its own query on its own freshly seeded
environment and shares nothing with any other run.  :class:`SweepExecutor`
exploits that embarrassing parallelism by fanning :class:`SweepTask`
payloads over a ``spawn``-based :class:`~concurrent.futures.ProcessPoolExecutor`
and merging the outcomes **in task order**, independent of worker completion
order, so parallel results are bit-identical to a serial run.

Design constraints:

* Tasks are frozen, picklable descriptions keyed by ``(point_key, seed)``;
  the worker re-derives everything else (environment, session, selector)
  from them, and both the serial and parallel paths execute the *same*
  module-level :func:`run_sweep_task`, which is what makes jobs=1 and
  jobs=N provably equivalent.
* Observability cannot ship arbitrary ``obs_factory`` callables across a
  process boundary; instead a task carries a declarative ``observe`` spec
  (:data:`OBSERVE_NONE` or :data:`OBSERVE_FLOWS`) and the worker returns
  the picklable :class:`~repro.obs.flow.FlowRecord` list, which the parent
  wraps back into an :class:`~repro.obs.Instrumentation`.  Callers that
  need richer in-process instrumentation (tracers, custom hooks) keep the
  serial ``obs_factory`` path in :mod:`repro.core.measurement`.
* Workers cache one :class:`~repro.hardware.environment.EnvironmentTemplate`
  per topology (:func:`~repro.hardware.environment.shared_template`), so a
  worker that runs many repeats of the same sweep pays the topology build
  once.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Type

from repro.coordinator.allocation import (
    KnowledgeBasedSelector,
    NaiveSelector,
    NodeSelector,
)
from repro.coordinator.client_manager import ExecutionReport
from repro.coordinator.deployer import Deployer, SelectorPlacement
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import EnvironmentConfig, shared_template
from repro.obs.flow import FlowRecord, FlowRecorder
from repro.obs.instrument import Instrumentation
from repro.obs.tracer import NULL_TRACER
from repro.scsql.plan import DeploymentPlan, compile_plan
from repro.scsql.session import SCSQSession
from repro.util.errors import MeasurementError

#: No instrumentation: the run pays one attribute check per hook site.
OBSERVE_NONE = "none"
#: Flows + metrics instrumentation (no timeline tracer): what the bench and
#: the latency-percentile reports need, and cheap enough for full sweeps.
OBSERVE_FLOWS = "flows"

#: Node selectors a task may name (ablation sweeps); values are the selector
#: classes, instantiated fresh inside the worker.
SELECTORS: Dict[str, Type[NodeSelector]] = {
    "naive": NaiveSelector,
    "knowledge": KnowledgeBasedSelector,
}


@dataclass(frozen=True)
class SweepTask:
    """One (sweep-point, repeat) simulation, as a spawn-safe payload.

    Attributes:
        point_key: Hashable identity of the sweep point; outcomes of the
            same point are grouped under this key by the drivers.
        seed: Jitter seed of this repeat (overrides ``env_config.seed``).
        query: The SCSQL query text to execute.
        payload_bytes: Payload volume the query streams (for bandwidth).
        settings: Engine settings, or None for defaults.
        env_config: Environment shape/cost model (seed field ignored).
        observe: :data:`OBSERVE_NONE` or :data:`OBSERVE_FLOWS`.
        selector: Optional :data:`SELECTORS` name; when set the query is
            placed by that node-selection algorithm instead of the default
            naive policy (the ablation path).
        plan: Optional pre-compiled :class:`~repro.scsql.plan.DeploymentPlan`
            for ``query``.  A sweep compiles each point once and shares the
            (picklable) plan across all its repeat tasks; without one the
            worker compiles from ``query`` itself.
    """

    point_key: Any
    seed: int
    query: str
    payload_bytes: int
    settings: Optional[ExecutionSettings] = None
    env_config: EnvironmentConfig = EnvironmentConfig()
    observe: str = OBSERVE_NONE
    selector: Optional[str] = None
    plan: Optional[DeploymentPlan] = None


@dataclass
class TaskOutcome:
    """What one :class:`SweepTask` produced (picklable)."""

    point_key: Any
    seed: int
    report: ExecutionReport
    flow_records: List[FlowRecord] = field(default_factory=list)
    observed: bool = False

    def observation(self) -> Optional[Instrumentation]:
        """Rebuild the repeat's instrumentation from the shipped records.

        The reconstructed hub carries the completed flows (so latency
        percentiles and :meth:`~repro.obs.flow.FlowRecorder.latencies` work
        exactly as in-process) but no timeline tracer.
        """
        if not self.observed:
            return None
        flows = FlowRecorder()
        flows._completed = list(self.flow_records)
        return Instrumentation(tracer=NULL_TRACER, flows=flows)


def _make_obs(observe: str) -> Optional[Instrumentation]:
    if observe == OBSERVE_NONE:
        return None
    if observe == OBSERVE_FLOWS:
        return Instrumentation(tracer=NULL_TRACER)
    raise ValueError(f"unknown observe spec {observe!r}")


def run_sweep_task(
    task: SweepTask,
    prepare=None,
    obs: Optional[Instrumentation] = None,
) -> TaskOutcome:
    """Execute one task in the current process.

    This is the single execution path for every measurement: serial and
    parallel sweeps (:class:`SweepExecutor` calls it inline for ``jobs=1``
    and ships it to pool workers otherwise) and the in-process
    ``prepare``/``obs_factory`` loop of
    :func:`~repro.core.measurement.measure_query_bandwidth`.

    ``prepare`` and ``obs`` are in-process-only conveniences (callables and
    live instrumentation hubs do not cross the spawn boundary): ``obs``
    overrides the declarative ``task.observe`` spec, and ``prepare`` runs
    against a fresh session before the query — which forces the text
    compilation path, since the callback may define functions or sources
    the query needs *before* it can compile.

    Raises:
        MeasurementError: If the query finishes in non-positive simulated
            time (its bandwidth would be undefined).
    """
    config = task.env_config.with_seed(task.seed)
    if obs is None:
        obs = _make_obs(task.observe)
    env = shared_template(config).fork(seed=config.seed, obs=obs)
    if prepare is not None:
        session = SCSQSession(env, task.settings)
        prepare(session)
        report = session.execute(task.query, task.settings)
    else:
        plan = task.plan or compile_plan(task.query, settings=task.settings)
        strategy = (
            SelectorPlacement(SELECTORS[task.selector]())
            if task.selector is not None
            else None
        )
        report = Deployer(env).run(plan, strategy=strategy, settings=task.settings)
    assert report is not None  # select queries always report
    if report.duration <= 0.0:
        raise MeasurementError(
            f"task {task.point_key!r} (seed {task.seed}) finished in "
            f"non-positive simulated time ({report.duration!r}); "
            f"bandwidth is undefined"
        )
    flow_records = list(obs.flows.completed) if obs is not None else []
    return TaskOutcome(
        point_key=task.point_key,
        seed=task.seed,
        report=report,
        flow_records=flow_records,
        observed=obs is not None,
    )


class SweepExecutor:
    """Runs independent sweep tasks, in-process or over worker processes.

    Args:
        jobs: Maximum worker processes.  ``jobs=1`` (the default) executes
            every task inline in submission order — no pool, no pickling.
    """

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, tasks: Sequence[SweepTask]) -> List[TaskOutcome]:
        """Execute ``tasks``; outcomes are returned in task order.

        The merge is deterministic regardless of worker completion order:
        outcome ``i`` is always the result of ``tasks[i]``.
        """
        return self.map(run_sweep_task, tasks)

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Run a module-level picklable ``fn`` over ``tasks``, in task order.

        The generic fan-out behind :meth:`run`, reused by other
        embarrassingly parallel harnesses (the fault-injection benchmark's
        :func:`repro.bench.faults.run_fault_task` repeats).  The contract
        is the same: both the ``jobs=1`` and the ``jobs=N`` path call the
        *same* function on the *same* payloads and merge results in task
        order, so a deterministic ``fn`` yields bit-identical results
        either way.
        """
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        # ``spawn`` workers re-import the package from a clean interpreter
        # (inheriting sys.path), so tasks never depend on forked state.
        context = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(tasks))
        outcomes: List[Optional[Any]] = [None] * len(tasks)
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            for index, future in enumerate(futures):
                outcomes[index] = future.result()
        return outcomes

    def __repr__(self) -> str:
        return f"<SweepExecutor jobs={self.jobs}>"
