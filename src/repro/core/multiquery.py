"""Concurrent continuous queries sharing one simulated environment.

The paper's client manager hosts many CQs at once ("When a user submits a
CQ, it is optimized and started in the client manager", section 2.2); the
single-query measurement harness never exercises that.  A
:class:`MultiQuerySession` does: it deploys several compiled
:class:`~repro.scsql.plan.DeploymentPlan` objects onto *one* environment —
each under its own rp-prefix namespace so identical plans stay distinct —
starts them together, drives the shared simulator once, and reports the
bandwidth every query achieved while the others were running.

Comparing those concurrent bandwidths against solo baselines (same plan,
fresh environment, same seed) quantifies interference; see
:func:`repro.core.experiments.contention.run_contention_demo` for the
canonical two-CQ shared-I/O-node demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.coordinator.deployer import (
    Deployer,
    Deployment,
    ExecutionReport,
    PlacementStrategy,
)
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.util.errors import QueryExecutionError
from repro.util.units import MEGA


@dataclass
class QueryOutcome:
    """What one query of a concurrent run achieved.

    Attributes:
        label: The query's session-unique label.
        report: Its full execution report (placements keep the unprefixed
            stream-process ids).
        payload_bytes: Payload volume the query streamed.
        solo_mbps: Bandwidth of the same plan running alone (when the
            caller measured one); ``interference`` derives from it.
        total_duration: Session-relative completion time (seconds from the
            session's start to this query's final delivery).  Set by the
            adaptive runtime, where it covers migration downtime and
            replay — ``mbps`` then uses it, so adaptive and static numbers
            compare fairly.  ``None`` on the classic path (where it would
            equal ``report.duration`` anyway).
        migrations: Audit records of the live migrations this query went
            through (:class:`~repro.coordinator.deployer.MigrationRecord`);
            empty on the classic path.
    """

    label: str
    report: ExecutionReport
    payload_bytes: int
    solo_mbps: Optional[float] = None
    total_duration: Optional[float] = None
    migrations: List[object] = field(default_factory=list)

    @property
    def mbps(self) -> float:
        """Bandwidth under concurrency, in megabits/second."""
        duration = (
            self.total_duration
            if self.total_duration is not None
            else self.report.duration
        )
        return self.payload_bytes * 8.0 / duration / MEGA

    @property
    def interference(self) -> Optional[float]:
        """Concurrent/solo bandwidth ratio (1.0 = no slowdown), when a
        solo baseline is attached; None otherwise."""
        if self.solo_mbps is None:
            return None
        return self.mbps / self.solo_mbps


@dataclass
class MultiQueryResult:
    """Per-query outcomes of one concurrent run, in submission order."""

    outcomes: List[QueryOutcome] = field(default_factory=list)

    live: Optional[object] = None
    """The :class:`~repro.obs.live.LiveSampler` that watched the
    concurrent run, when the caller attached one (windowed utilization /
    latency series plus health events); None otherwise."""

    migrations: List[object] = field(default_factory=list)
    """Session-wide migration records in execution order (adaptive runs)."""

    def __getitem__(self, label: str) -> QueryOutcome:
        for outcome in self.outcomes:
            if outcome.label == label:
                return outcome
        raise KeyError(f"no query labelled {label!r}")

    def format_table(self) -> str:
        """The concurrent run as text: bandwidth (and slowdown) per query."""
        lines = [
            "Concurrent continuous queries (one shared environment)",
            f"{'query':>8}  {'Mbps':>10}  {'solo Mbps':>10}  {'ratio':>6}",
        ]
        for outcome in self.outcomes:
            solo = f"{outcome.solo_mbps:.1f}" if outcome.solo_mbps is not None else "-"
            ratio = (
                f"{outcome.interference:.2f}"
                if outcome.interference is not None
                else "-"
            )
            lines.append(
                f"{outcome.label:>8}  {outcome.mbps:>10.1f}  {solo:>10}  {ratio:>6}"
            )
        return "\n".join(lines)


@dataclass
class _Entry:
    """One submitted query: its deployment history and replay material."""

    label: str
    deployment: Deployment
    payload_bytes: int
    stop_after: Optional[float]
    plan: object
    """The compiled plan, kept so the adaptive runtime can re-instantiate
    the graph for a migration generation."""


class MultiQuerySession:
    """Runs several compiled plans concurrently on one environment.

    Usage::

        session = MultiQuerySession(env)
        session.submit(plan_a, payload_bytes=..., label="a")
        session.submit(plan_b, payload_bytes=..., label="b")
        result = session.run()
        session.teardown()

    Submission deploys immediately (placement is decided in submission
    order, deterministically); :meth:`run` starts every deployment, drives
    the shared simulator to completion once, and collects every report.
    """

    def __init__(
        self,
        env: Optional[Environment] = None,
        settings: Optional[ExecutionSettings] = None,
        verify: Optional[str] = None,
        adaptive: object = "off",
    ):
        """``verify`` (``None``/``"warn"``/``"strict"``) statically checks
        every submitted plan against the session's live environment before
        deploying it — including double allocation against queries already
        submitted (``SCSQ201``), since earlier deployments hold their nodes
        in the shared CNDBs.

        ``adaptive`` opts the session into the measurement-driven runtime:
        ``"off"`` (default) runs the classic single ``sim.run()`` loop,
        bit-identically to sessions before the adaptive runtime existed;
        ``"on"`` (or an :class:`~repro.core.adaptive.AdaptiveConfig`)
        steps the simulator under an
        :class:`~repro.core.adaptive.AdaptiveController` that may live-
        migrate stream processes when the health detector finds a
        bottleneck.  Adaptive sessions require a live-instrumented
        environment (``Instrumentation(live=LiveSampler(...))``).
        """
        from repro.core.adaptive import AdaptiveConfig

        if verify not in (None, "warn", "strict"):
            raise QueryExecutionError(
                f"verify mode must be None, 'warn' or 'strict', not {verify!r}"
            )
        if isinstance(adaptive, AdaptiveConfig):
            self.adaptive: Optional[AdaptiveConfig] = adaptive
        elif adaptive == "on":
            self.adaptive = AdaptiveConfig()
        elif adaptive == "off":
            self.adaptive = None
        else:
            raise QueryExecutionError(
                f"adaptive mode must be 'off', 'on' or an AdaptiveConfig, "
                f"not {adaptive!r}"
            )
        self.env = env or Environment(EnvironmentConfig())
        self.settings = settings
        self.verify = verify
        self.deployer = Deployer(self.env)
        self._entries: List[_Entry] = []
        self._labels: Dict[str, Deployment] = {}
        self._ran = False

    def submit(
        self,
        plan,
        payload_bytes: int,
        strategy: Optional[PlacementStrategy] = None,
        settings: Optional[ExecutionSettings] = None,
        label: Optional[str] = None,
        stop_after: Optional[float] = None,
    ) -> str:
        """Place and deploy one plan; returns its label.

        The label namespaces the query's running-process (and stream) ids
        as ``"<label>/<sp_id>"``; it defaults to ``q0``, ``q1``, ... in
        submission order and must be session-unique.
        """
        if self._ran:
            raise QueryExecutionError("session already ran; use a new session")
        if label is None:
            label = f"q{len(self._entries)}"
        if label in self._labels:
            raise QueryExecutionError(f"duplicate query label {label!r}")
        placed = self.deployer.place(plan, strategy, settings or self.settings)
        deployment = self.deployer.deploy(
            placed, rp_prefix=f"{label}/", verify=self.verify
        )
        self._labels[label] = deployment
        self._entries.append(_Entry(
            label=label, deployment=deployment, payload_bytes=payload_bytes,
            stop_after=stop_after, plan=plan,
        ))
        return label

    def deployment(self, label: str) -> Deployment:
        """The live deployment behind a label (for placement assertions)."""
        return self._labels[label]

    def run(self) -> MultiQueryResult:
        """Run every submitted query to completion, concurrently.

        All queries start at the same simulated instant; one simulator run
        drives them all, so they contend for nodes, links, and I/O paths
        exactly as co-resident CQs would.
        """
        if self._ran:
            raise QueryExecutionError("session already ran; use a new session")
        if not self._entries:
            raise QueryExecutionError("no queries submitted")
        self._ran = True
        if self.adaptive is not None:
            from repro.core.adaptive import AdaptiveController

            return AdaptiveController(self, self.adaptive).run()
        for entry in self._entries:
            entry.deployment.start(stop_after=entry.stop_after)
        self.env.sim.run()
        return MultiQueryResult(
            outcomes=[
                QueryOutcome(
                    label=entry.label,
                    report=entry.deployment.finish(),
                    payload_bytes=entry.payload_bytes,
                )
                for entry in self._entries
            ]
        )

    def teardown(self) -> None:
        """Tear down every deployment (nodes return to the CNDBs)."""
        self.deployer.teardown()

    def __repr__(self) -> str:
        return f"<MultiQuerySession queries={len(self._entries)} on {self.env!r}>"
