"""Export experiment results as CSV for external plotting.

The paper's figures are line charts; these helpers dump the regenerated
series in a plot-ready tabular form (no plotting dependencies required —
the environment is offline).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.core.experiments.fig6 import Fig6Result
from repro.core.experiments.fig8 import Fig8Result
from repro.core.experiments.fig15 import Fig15Result
from repro.core.experiments.scaling import ScalingStudy

Row = Dict[str, Union[int, float, str, bool]]


def fig6_rows(result: Fig6Result) -> List[Row]:
    """Figure 6 as rows: buffer size, buffering mode, bandwidth stats."""
    return [
        {
            "buffer_bytes": p.buffer_bytes,
            "double_buffering": p.double_buffering,
            "mbps_mean": p.result.mbps.mean,
            "mbps_std": p.result.mbps.std,
            "repeats": len(p.result.mbps.samples),
        }
        for p in sorted(result.points, key=lambda p: (p.double_buffering, p.buffer_bytes))
    ]


def fig8_rows(result: Fig8Result) -> List[Row]:
    """Figure 8 as rows: buffer size, node selection, buffering, stats."""
    return [
        {
            "buffer_bytes": p.buffer_bytes,
            "node_selection": "balanced" if p.balanced else "sequential",
            "double_buffering": p.double_buffering,
            "mbps_mean": p.result.mbps.mean,
            "mbps_std": p.result.mbps.std,
            "repeats": len(p.result.mbps.samples),
        }
        for p in sorted(
            result.points,
            key=lambda p: (p.balanced, p.double_buffering, p.buffer_bytes),
        )
    ]


def fig15_rows(result: Fig15Result) -> List[Row]:
    """Figure 15 as rows: query number, stream count, bandwidth stats."""
    return [
        {
            "query": p.query_number,
            "n_streams": p.n,
            "mbps_mean": p.result.mbps.mean,
            "mbps_std": p.result.mbps.std,
            "repeats": len(p.result.mbps.samples),
        }
        for p in sorted(result.points, key=lambda p: (p.query_number, p.n))
    ]


def scaling_rows(study: ScalingStudy) -> List[Row]:
    """Scaling extension as rows."""
    return [
        {
            "query": p.query_number,
            "io_nodes": p.num_io_nodes,
            "uplink_gbps": p.uplink_gbps,
            "mbps_mean": p.result.mbps.mean,
            "mbps_std": p.result.mbps.std,
        }
        for p in sorted(
            study.points, key=lambda p: (p.uplink_gbps, p.query_number, p.num_io_nodes)
        )
    ]


def write_csv(path: Union[str, Path], rows: Iterable[Row]) -> Path:
    """Write rows (dicts sharing a schema) to ``path`` as CSV.

    Raises:
        ValueError: If there are no rows (no schema to write).
    """
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to write")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path
