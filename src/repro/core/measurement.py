"""The bandwidth-measurement harness.

The paper's method (section 3): "The bandwidth is computed by measuring the
total time to communicate a finite stream of 3MB arrays between stream
processes ... Each experiment was performed five times in order to achieve
low variance in the measurements."

:func:`measure_query_bandwidth` reproduces that method: it runs one SCSQL
query on a *fresh* simulated environment per repeat (with a distinct jitter
seed), divides the known payload volume by the simulated execution time,
and summarizes the repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.coordinator.client_manager import ExecutionReport
from repro.core.parallel import (
    OBSERVE_NONE,
    SweepExecutor,
    SweepTask,
    TaskOutcome,
    run_sweep_task,
)
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import EnvironmentConfig
from repro.obs.instrument import Instrumentation
from repro.scsql.plan import compile_plan
from repro.scsql.session import SCSQSession
from repro.util.errors import MeasurementError
from repro.util.stats import MeasurementStats, summarize
from repro.util.units import MEGA

#: The paper repeats every experiment five times.
DEFAULT_REPEATS = 5


@dataclass
class BandwidthResult:
    """Outcome of one repeated bandwidth measurement.

    Attributes:
        mbps: Bandwidth statistics over the repeats, in megabits/second.
        payload_bytes: The payload volume each run streamed.
        reports: The raw execution report of every repeat.
        observations: One :class:`~repro.obs.Instrumentation` per repeat
            when the measurement was observed (empty otherwise); repeat k's
            metrics snapshot is also on ``reports[k].metrics``.
    """

    mbps: MeasurementStats
    payload_bytes: int
    reports: List[ExecutionReport] = field(default_factory=list)
    observations: List[Instrumentation] = field(default_factory=list)

    @property
    def mean_mbps(self) -> float:
        return self.mbps.mean

    def flow_latencies(self, stream_id: Optional[str] = None) -> List[float]:
        """End-to-end flow latencies pooled over the observed repeats.

        Empty unless the measurement ran with an ``obs_factory`` whose
        instrumentation recorded flows; see
        :meth:`repro.obs.flow.FlowRecorder.latencies`.
        """
        return [
            latency
            for obs in self.observations
            for latency in obs.flows.latencies(stream_id)
        ]

    def __str__(self) -> str:
        return f"{self.mbps.mean:.1f} ± {self.mbps.std:.1f} Mbps"


@dataclass(frozen=True)
class PointSpec:
    """One sweep point of a multi-point measurement.

    Attributes:
        key: Hashable identity of the point (e.g. ``("fig6", 200, True)``);
            the result table of :func:`measure_points` is keyed by it.
        query: The SCSQL select query to run.
        payload_bytes: Payload volume the query streams.
        settings: Engine settings, or None for defaults.
        selector: Optional node-selector name (ablation path); see
            :data:`repro.core.parallel.SELECTORS`.
    """

    key: Any
    query: str
    payload_bytes: int
    settings: Optional[ExecutionSettings] = None
    selector: Optional[str] = None


def _verify_sweep_plan(plan, spec: "PointSpec", config: EnvironmentConfig) -> None:
    """Fail a sweep fast on a malformed point.

    Static verification of the compiled plan against the sweep's topology
    catches over-subscription, nonexistent nodes, exhausted allocation
    sequences, etc. *before* any worker spins up — one
    :class:`~repro.util.errors.PlanVerificationError` naming the point
    instead of a mid-sweep crash.  Warnings (capacity bounds) pass; many
    legitimate sweep points are deliberately link-bound.
    """
    from repro.analysis.verifier import verify_plan
    from repro.core.parallel import SELECTORS

    selector = SELECTORS[spec.selector]() if spec.selector else None
    report = verify_plan(plan, config=config, label=str(spec.key), selector=selector)
    report.raise_if_failed()


def _result_from_outcomes(
    outcomes: Sequence[TaskOutcome],
    payload_bytes: int,
    observations: Optional[List[Instrumentation]] = None,
) -> BandwidthResult:
    """Assemble one point's :class:`BandwidthResult` from its repeats.

    ``observations`` carries the live per-repeat instrumentation of an
    in-process ``obs_factory`` run; without it each outcome's shipped flow
    records are rebuilt into an observation (the worker path).
    """
    samples: List[float] = []
    reports: List[ExecutionReport] = []
    rebuilt: List[Instrumentation] = []
    for k, outcome in enumerate(outcomes):
        report = outcome.report
        reports.append(report)
        if report.duration <= 0.0:
            raise MeasurementError(
                f"repeat {k} finished in non-positive simulated time "
                f"({report.duration!r}); bandwidth is undefined"
            )
        samples.append(payload_bytes * 8.0 / report.duration / MEGA)
        if observations is None:
            obs = outcome.observation()
            if obs is not None:
                rebuilt.append(obs)
    return BandwidthResult(
        mbps=summarize(samples),
        payload_bytes=payload_bytes,
        reports=reports,
        observations=rebuilt if observations is None else observations,
    )


def measure_points(
    specs: Sequence[PointSpec],
    repeats: int = DEFAULT_REPEATS,
    env_config: Optional[EnvironmentConfig] = None,
    base_seed: int = 0,
    jobs: int = 1,
    observe: str = OBSERVE_NONE,
    executor: Optional[SweepExecutor] = None,
) -> Dict[Any, BandwidthResult]:
    """Measure several sweep points, fanning every (point, repeat) task out.

    All ``len(specs) * repeats`` simulations are independent, so they are
    submitted to one :class:`~repro.core.parallel.SweepExecutor` together
    — with ``jobs > 1`` the whole figure sweep parallelizes, not just the
    repeats of one point.  Results come back keyed by ``spec.key``, each
    assembled from its repeats in seed order regardless of completion
    order, so the table is bit-identical to a serial sweep.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    config = env_config or EnvironmentConfig()
    # Compile each point once; its (picklable) plan is shared by all the
    # point's repeat tasks instead of being recompiled per repeat/worker.
    plans = {spec.key: compile_plan(spec.query, settings=spec.settings) for spec in specs}
    for spec in specs:
        _verify_sweep_plan(plans[spec.key], spec, config)
    tasks = [
        SweepTask(
            point_key=spec.key,
            seed=base_seed + k,
            query=spec.query,
            payload_bytes=spec.payload_bytes,
            settings=spec.settings,
            env_config=config,
            observe=observe,
            selector=spec.selector,
            plan=plans[spec.key],
        )
        for spec in specs
        for k in range(repeats)
    ]
    outcomes = (executor or SweepExecutor(jobs)).run(tasks)
    results: Dict[Any, BandwidthResult] = {}
    for index, spec in enumerate(specs):
        point_outcomes = outcomes[index * repeats:(index + 1) * repeats]
        results[spec.key] = _result_from_outcomes(point_outcomes, spec.payload_bytes)
    return results


def measure_query_bandwidth(
    query: str,
    payload_bytes: int,
    settings: Optional[ExecutionSettings] = None,
    repeats: int = DEFAULT_REPEATS,
    env_config: Optional[EnvironmentConfig] = None,
    base_seed: int = 0,
    prepare: Optional[Callable[[SCSQSession], None]] = None,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
    jobs: int = 1,
    observe: str = OBSERVE_NONE,
    executor: Optional[SweepExecutor] = None,
) -> BandwidthResult:
    """Measure the streaming bandwidth of one SCSQL query.

    Args:
        query: The SCSQL select query to run.
        payload_bytes: Total payload the query streams over the measured
            path (e.g. n * count * array_bytes); bandwidth is this volume
            divided by the simulated execution time.
        settings: Engine settings (buffer size, buffering mode).
        repeats: Number of independent runs (paper: five).
        env_config: Environment shape/cost model; seeds are varied per run.
        base_seed: Seed of the first repeat; repeat k uses base_seed + k.
        prepare: Optional callback run against each fresh session before
            the query (e.g. defining functions or registering sources).
            Forces the in-process path (callbacks don't cross processes).
        obs_factory: Optional factory called with the repeat index; its
            :class:`~repro.obs.Instrumentation` is installed on that
            repeat's fresh environment and attached to the result, so the
            run's internal mechanism (resource contention, queue depths)
            is inspectable per repeat.  Forces the in-process path; for
            parallel runs that only need flow latencies, pass
            ``observe="flows"`` instead.
        jobs: Fan the repeats over this many worker processes.  ``jobs=1``
            runs in-process; results are bit-identical either way.
        observe: Declarative instrumentation spec for the worker path
            (:data:`~repro.core.parallel.OBSERVE_NONE` or
            :data:`~repro.core.parallel.OBSERVE_FLOWS`).
        executor: Reuse an existing :class:`~repro.core.parallel.SweepExecutor`
            instead of creating one from ``jobs``.

    Returns:
        The summarized result, with per-run reports attached.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    template_config = env_config or EnvironmentConfig()
    if prepare is not None or obs_factory is not None:
        # In-process loop: arbitrary callables cannot be shipped to spawn
        # workers.  Each repeat still runs through the one worker entry
        # point (run_sweep_task), just inline, with the live obs handed in.
        # ``prepare`` forces text compilation (it may define functions the
        # query needs); otherwise the query compiles once up front.
        plan = compile_plan(query, settings=settings) if prepare is None else None
        if plan is not None:
            _verify_sweep_plan(
                plan,
                PointSpec(key="point", query=query, payload_bytes=payload_bytes),
                template_config,
            )
        observations: List[Instrumentation] = []
        outcomes: List[TaskOutcome] = []
        for k in range(repeats):
            obs = obs_factory(k) if obs_factory is not None else None
            if obs is not None:
                observations.append(obs)
            task = SweepTask(
                point_key="point",
                seed=base_seed + k,
                query=query,
                payload_bytes=payload_bytes,
                settings=settings,
                env_config=template_config,
                plan=plan,
            )
            outcomes.append(run_sweep_task(task, prepare=prepare, obs=obs))
        return _result_from_outcomes(
            outcomes, payload_bytes, observations=observations
        )
    spec = PointSpec(key="point", query=query, payload_bytes=payload_bytes, settings=settings)
    results = measure_points(
        [spec], repeats=repeats, env_config=template_config, base_seed=base_seed,
        jobs=jobs, observe=observe, executor=executor,
    )
    return results["point"]
