"""The bandwidth-measurement harness.

The paper's method (section 3): "The bandwidth is computed by measuring the
total time to communicate a finite stream of 3MB arrays between stream
processes ... Each experiment was performed five times in order to achieve
low variance in the measurements."

:func:`measure_query_bandwidth` reproduces that method: it runs one SCSQL
query on a *fresh* simulated environment per repeat (with a distinct jitter
seed), divides the known payload volume by the simulated execution time,
and summarizes the repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.coordinator.client_manager import ExecutionReport
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.obs.instrument import Instrumentation
from repro.scsql.session import SCSQSession
from repro.util.errors import MeasurementError
from repro.util.stats import MeasurementStats, summarize
from repro.util.units import MEGA

#: The paper repeats every experiment five times.
DEFAULT_REPEATS = 5


@dataclass
class BandwidthResult:
    """Outcome of one repeated bandwidth measurement.

    Attributes:
        mbps: Bandwidth statistics over the repeats, in megabits/second.
        payload_bytes: The payload volume each run streamed.
        reports: The raw execution report of every repeat.
        observations: One :class:`~repro.obs.Instrumentation` per repeat
            when the measurement was observed (empty otherwise); repeat k's
            metrics snapshot is also on ``reports[k].metrics``.
    """

    mbps: MeasurementStats
    payload_bytes: int
    reports: List[ExecutionReport] = field(default_factory=list)
    observations: List[Instrumentation] = field(default_factory=list)

    @property
    def mean_mbps(self) -> float:
        return self.mbps.mean

    def flow_latencies(self, stream_id: Optional[str] = None) -> List[float]:
        """End-to-end flow latencies pooled over the observed repeats.

        Empty unless the measurement ran with an ``obs_factory`` whose
        instrumentation recorded flows; see
        :meth:`repro.obs.flow.FlowRecorder.latencies`.
        """
        return [
            latency
            for obs in self.observations
            for latency in obs.flows.latencies(stream_id)
        ]

    def __str__(self) -> str:
        return f"{self.mbps.mean:.1f} ± {self.mbps.std:.1f} Mbps"


def measure_query_bandwidth(
    query: str,
    payload_bytes: int,
    settings: Optional[ExecutionSettings] = None,
    repeats: int = DEFAULT_REPEATS,
    env_config: Optional[EnvironmentConfig] = None,
    base_seed: int = 0,
    prepare: Optional[Callable[[SCSQSession], None]] = None,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
) -> BandwidthResult:
    """Measure the streaming bandwidth of one SCSQL query.

    Args:
        query: The SCSQL select query to run.
        payload_bytes: Total payload the query streams over the measured
            path (e.g. n * count * array_bytes); bandwidth is this volume
            divided by the simulated execution time.
        settings: Engine settings (buffer size, buffering mode).
        repeats: Number of independent runs (paper: five).
        env_config: Environment shape/cost model; seeds are varied per run.
        base_seed: Seed of the first repeat; repeat k uses base_seed + k.
        prepare: Optional callback run against each fresh session before
            the query (e.g. defining functions or registering sources).
        obs_factory: Optional factory called with the repeat index; its
            :class:`~repro.obs.Instrumentation` is installed on that
            repeat's fresh environment and attached to the result, so the
            run's internal mechanism (resource contention, queue depths)
            is inspectable per repeat.

    Returns:
        The summarized result, with per-run reports attached.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    template = env_config or EnvironmentConfig()
    samples: List[float] = []
    reports: List[ExecutionReport] = []
    observations: List[Instrumentation] = []
    for k in range(repeats):
        config = EnvironmentConfig(
            bluegene=template.bluegene,
            backend_nodes=template.backend_nodes,
            frontend_nodes=template.frontend_nodes,
            params=template.params,
            seed=base_seed + k,
        )
        obs = obs_factory(k) if obs_factory is not None else None
        if obs is not None:
            observations.append(obs)
        session = SCSQSession(Environment(config, obs=obs), settings)
        if prepare is not None:
            prepare(session)
        report = session.execute(query, settings)
        assert report is not None  # select queries always report
        reports.append(report)
        if report.duration <= 0.0:
            raise MeasurementError(
                f"repeat {k} finished in non-positive simulated time "
                f"({report.duration!r}); bandwidth is undefined"
            )
        samples.append(payload_bytes * 8.0 / report.duration / MEGA)
    return BandwidthResult(
        mbps=summarize(samples),
        payload_bytes=payload_bytes,
        reports=reports,
        observations=observations,
    )
