"""Adaptive-runtime regression cases: static vs adaptive, same seed.

Two situations from the reproduced figures where the measurement-driven
runtime (:mod:`repro.core.adaptive`) should beat a static placement:

* **fig15** — the concurrent-CQ contention funnel of
  :mod:`repro.core.experiments.contention`: two Query-3-shaped CQs pin
  their receivers into one pset, so both result streams squeeze through
  that pset's single I/O-node path.  The right move — migrating one
  query's receivers into a free pset — recovers each query's bandwidth
  toward its solo baseline.
* **fig8** — the sequential node selection of Figure 7A
  (:mod:`repro.core.experiments.fig8`): generator ``b``'s traffic is
  routed through generator ``a``'s busy communication co-processor.
  Migrating either generator off the shared route removes the forwarding
  contention the paper measured.

Each case runs twice on identically seeded environments — once with the
classic static session, once with ``adaptive="on"`` — and reports both
bandwidths plus the migration audit trail and the time the detector took
to see the replacement deliver.  ``repro adaptive`` (the CLI) and the
``adaptive`` BENCH figure are thin wrappers over :func:`run_adaptive_point`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.adaptive import AdaptiveConfig
from repro.core.experiments.contention import DEFAULT_SENDERS, contending_query
from repro.core.experiments.fig8 import SEQUENTIAL, merge_query
from repro.core.multiquery import MultiQueryResult, MultiQuerySession
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import EnvironmentConfig, shared_template
from repro.obs.health import ContinuousBottleneckDetector
from repro.obs.instrument import Instrumentation
from repro.obs.live import DEFAULT_WINDOW, LiveSampler
from repro.obs.tracer import NULL_TRACER
from repro.scsql.plan import compile_plan
from repro.util.errors import QueryExecutionError

__all__ = [
    "ADAPTIVE_POINTS",
    "AdaptiveComparison",
    "run_adaptive_point",
    "write_health_events",
]

#: The regression points this module knows how to build.
ADAPTIVE_POINTS: Tuple[str, ...] = ("fig15", "fig8")


@dataclass(frozen=True)
class _PointSpec:
    """One adaptive regression point: labelled plans plus their payloads."""

    queries: Tuple[Tuple[str, str], ...]
    """(label, SCSQL text) per concurrent query."""

    payload_bytes: int
    """Payload volume each query streams."""

    settings: Optional[ExecutionSettings] = None
    """Execution settings the point needs (fig8 lives at large MPI
    buffers, where the busy-intermediate penalty binds); None for the
    environment defaults."""


def _point_spec(point: str, smoke: bool) -> _PointSpec:
    """Build the point's queries, scaled down under ``smoke``."""
    if point == "fig15":
        n = 2
        array_bytes, count = (300_000, 3) if smoke else (3_000_000, 5)
        return _PointSpec(
            queries=tuple(
                (label, contending_query(sender, n, array_bytes, count))
                for label, sender in DEFAULT_SENDERS.items()
            ),
            payload_bytes=n * array_bytes * count,
        )
    if point == "fig8":
        array_bytes, count = (400_000, 5) if smoke else (1_000_000, 30)
        x, y = SEQUENTIAL
        return _PointSpec(
            queries=(("q8", merge_query(array_bytes, count, x, y)),),
            payload_bytes=2 * array_bytes * count,
            # Figure 8's node-selection effect appears at large buffers:
            # below ~10 KB the receiving co-processor binds either way and
            # there is nothing for a migration to win.
            settings=ExecutionSettings(
                mpi_buffer_bytes=100_000, double_buffering=True
            ),
        )
    raise QueryExecutionError(
        f"unknown adaptive point {point!r}; expected one of {ADAPTIVE_POINTS}"
    )


@dataclass
class AdaptiveComparison:
    """Static vs adaptive run of one regression point (same seed)."""

    point: str
    static: MultiQueryResult
    adaptive: MultiQueryResult

    @property
    def static_mbps(self) -> float:
        """Worst per-query bandwidth of the static run (Mbit/s)."""
        return min(outcome.mbps for outcome in self.static.outcomes)

    @property
    def adaptive_mbps(self) -> float:
        """Worst per-query bandwidth of the adaptive run (Mbit/s).

        Durations are session-relative, so migration downtime and replay
        are charged against the adaptive number — the comparison with
        :attr:`static_mbps` is end-to-end fair.
        """
        return min(outcome.mbps for outcome in self.adaptive.outcomes)

    @property
    def speedup(self) -> float:
        """Adaptive/static worst-query bandwidth ratio (1.0 = no change)."""
        return self.adaptive_mbps / self.static_mbps if self.static_mbps else 1.0

    @property
    def migrations(self) -> List[object]:
        return list(self.adaptive.migrations)

    @property
    def recover_s(self) -> float:
        """Seconds from the first migration to its replacement delivering.

        Read from the adaptive run's health events: the first ``recovered``
        stream event at or after the first migration's time.  0.0 when no
        migration happened.
        """
        if not self.adaptive.migrations:
            return 0.0
        first = min(record.time for record in self.adaptive.migrations)
        live = self.adaptive.live
        if live is not None:
            recovered = [
                event.time
                for event in live.health_events
                if event.kind == "recovered" and event.scope == "stream"
                and event.time >= first
            ]
            if recovered:
                return min(recovered) - first
        makespan = max(
            outcome.total_duration or outcome.report.duration
            for outcome in self.adaptive.outcomes
        )
        return makespan - first

    def format_table(self) -> str:
        lines = [
            f"Adaptive runtime vs static placement ({self.point})",
            f"{'':>10}  {'static Mbps':>12}  {'adaptive Mbps':>14}",
        ]
        for static, adaptive in zip(self.static.outcomes, self.adaptive.outcomes):
            lines.append(
                f"{static.label:>10}  {static.mbps:>12.1f}  {adaptive.mbps:>14.1f}"
            )
        lines.append(
            f"worst-query speedup x{self.speedup:.2f}, "
            f"{len(self.adaptive.migrations)} migration(s), "
            f"recover {self.recover_s * 1e3:.2f} ms"
        )
        for record in self.adaptive.migrations:
            lines.append(
                f"  {record.rp_prefix} {record.sp_id}: {record.source} -> "
                f"{record.target}"
                + (" (rolled back)" if record.rolled_back else "")
            )
        return "\n".join(lines)


def _run_session(
    spec: _PointSpec,
    config: EnvironmentConfig,
    adaptive: Optional[AdaptiveConfig],
    window: float,
    detector_kwargs: Optional[Dict[str, object]],
) -> MultiQueryResult:
    detector = (
        ContinuousBottleneckDetector(**detector_kwargs)
        if detector_kwargs else None
    )
    sampler = LiveSampler(window=window, detector=detector)
    obs = Instrumentation(tracer=NULL_TRACER, live=sampler)
    env = shared_template(config).fork(seed=config.seed, obs=obs)
    session = MultiQuerySession(
        env, adaptive=adaptive if adaptive is not None else "off"
    )
    for label, text in spec.queries:
        session.submit(
            compile_plan(text), payload_bytes=spec.payload_bytes, label=label,
            settings=spec.settings,
        )
    result = session.run()
    session.teardown()
    sampler.finalize(env.sim.now)
    result.live = sampler
    return result


def run_adaptive_point(
    point: str = "fig15",
    seed: int = 0,
    smoke: bool = False,
    env_config: Optional[EnvironmentConfig] = None,
    adaptive_config: Optional[AdaptiveConfig] = None,
    window: float = DEFAULT_WINDOW,
    detector_kwargs: Optional[Dict[str, object]] = None,
) -> AdaptiveComparison:
    """Run one regression point statically and adaptively, same seed.

    Both runs are live-instrumented (the static run needs the sampler only
    for comparable telemetry; its session still uses the classic single
    ``sim.run()`` path).  ``detector_kwargs`` forwards hysteresis
    thresholds (``high``/``low``/``up_windows``/``down_windows``/
    ``stall_windows``) to both runs' detectors.
    """
    spec = _point_spec(point, smoke)
    config = (env_config or EnvironmentConfig()).with_seed(seed)
    static = _run_session(spec, config, None, window, detector_kwargs)
    adaptive = _run_session(
        spec, config, adaptive_config or AdaptiveConfig(), window,
        detector_kwargs,
    )
    return AdaptiveComparison(point=point, static=static, adaptive=adaptive)


def write_health_events(path: str, result: MultiQueryResult) -> int:
    """Dump a run's health events as JSONL (one event per line).

    The CI adaptive smoke job uploads this file as its artifact.  Returns
    the number of events written.
    """
    live = result.live
    events = list(live.health_events) if live is not None else []
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    return len(events)
