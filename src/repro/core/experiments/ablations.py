"""Ablation experiments for the design choices DESIGN.md calls out.

The paper's conclusions sketch how its measurements should change the node
selection algorithm; these ablations close that loop:

* :func:`run_node_selection_ablation` — the same inbound workload placed
  by the *naive* selector ("the next available node") versus the
  :class:`~repro.coordinator.allocation.KnowledgeBasedSelector` built from
  the paper's observations (co-locate back-end senders, spread BlueGene
  receivers over psets).  No allocation sequences: this is what automatic
  placement achieves.
* :func:`run_buffer_choice_ablation` — optimal MPI buffer size per
  communication pattern, quantifying section 5's conclusion that "the
  optimal stream buffer size ... was highly dependent on whether point-to-
  point or merging stream communication was performed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.coordinator.allocation import (
    KnowledgeBasedSelector,
    NaiveSelector,
    NodeSelector,
)
from repro.core.experiments.fig6 import point_to_point_query, scaled_workload
from repro.core.experiments.fig8 import merge_query
from repro.core.measurement import (
    BandwidthResult,
    PointSpec,
    measure_points,
    measure_query_bandwidth,
)
from repro.core.parallel import OBSERVE_NONE, SweepTask, run_sweep_task
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import EnvironmentConfig
from repro.obs.instrument import Instrumentation
from repro.scsql.plan import compile_plan
from repro.util.stats import MeasurementStats, summarize
from repro.util.units import MEGA


def automatic_inbound_query(n: int, array_bytes: int, count: int) -> str:
    """An inbound query with *no* allocation sequences: placement is the
    node selection algorithm's problem."""
    return f"""
select extract(c) from
bag of sp a, bag of sp b, sp c, integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
  'bg')
and a=spv(
  (select gen_array({array_bytes},{count})
   from integer i where i in iota(1,n)),
  'be')
and n={n};
"""


@dataclass
class SelectorResult:
    """Bandwidth of one selector on the automatic-placement workload."""

    selector_name: str
    n: int
    mbps: MeasurementStats
    observations: List[Instrumentation] = field(default_factory=list)


@dataclass
class NodeSelectionAblation:
    """Naive vs knowledge-based automatic placement."""

    results: List[SelectorResult]

    def mean(self, selector_name: str, n: int) -> float:
        for result in self.results:
            if result.selector_name == selector_name and result.n == n:
                return result.mbps.mean
        raise KeyError(f"no result for {selector_name!r}, n={n}")

    def improvement(self, n: int) -> float:
        """knowledge/naive bandwidth ratio at ``n`` streams."""
        return self.mean("knowledge", n) / self.mean("naive", n)

    def format_table(self) -> str:
        ns = sorted({r.n for r in self.results})
        lines = [
            "Ablation: automatic node selection (inbound workload, Mbps)",
            f"{'n':>3}  {'naive':>14}  {'knowledge':>14}  {'ratio':>6}",
        ]
        for n in ns:
            naive = self.mean("naive", n)
            knowledge = self.mean("knowledge", n)
            lines.append(
                f"{n:>3}  {naive:>14.1f}  {knowledge:>14.1f}  {knowledge / naive:>6.2f}"
            )
        return "\n".join(lines)


def _measure_with_selector(
    selector: NodeSelector,
    n: int,
    array_bytes: int,
    count: int,
    repeats: int,
    template: EnvironmentConfig,
    base_seed: int,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
) -> SelectorResult:
    """In-process repeats of one (selector, n) point via the one worker
    entry point, with the live ``obs_factory`` instrumentation handed in."""
    samples = []
    observations: List[Instrumentation] = []
    query_text = automatic_inbound_query(n, array_bytes, count)
    plan = compile_plan(query_text)
    payload = n * array_bytes * count
    for k in range(repeats):
        obs = obs_factory(k) if obs_factory is not None else None
        if obs is not None:
            observations.append(obs)
        task = SweepTask(
            point_key=(selector.name, n),
            seed=base_seed + k,
            query=query_text,
            payload_bytes=payload,
            env_config=template,
            selector=selector.name,
            plan=plan,
        )
        outcome = run_sweep_task(task, obs=obs)
        samples.append(payload * 8.0 / outcome.report.duration / MEGA)
    return SelectorResult(
        selector_name=selector.name, n=n, mbps=summarize(samples),
        observations=observations,
    )


def run_node_selection_ablation(
    stream_counts: Sequence[int] = (2, 4, 6, 8),
    repeats: int = 3,
    array_bytes: int = 3_000_000,
    count: int = 10,
    env_config: Optional[EnvironmentConfig] = None,
    base_seed: int = 0,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
    jobs: int = 1,
    observe: str = OBSERVE_NONE,
) -> NodeSelectionAblation:
    """Compare naive and knowledge-based automatic placement.

    ``obs_factory`` forces the in-process path; with ``jobs > 1`` every
    (selector, n, repeat) simulation fans out over worker processes, the
    selector named declaratively in the task payload.
    """
    template = env_config or EnvironmentConfig()
    if obs_factory is not None:
        results: List[SelectorResult] = []
        for n in stream_counts:
            for selector in (NaiveSelector(), KnowledgeBasedSelector()):
                results.append(
                    _measure_with_selector(
                        selector, n, array_bytes, count, repeats, template,
                        base_seed, obs_factory,
                    )
                )
        return NodeSelectionAblation(results=results)
    specs = [
        PointSpec(
            key=(selector_name, n),
            query=automatic_inbound_query(n, array_bytes, count),
            payload_bytes=n * array_bytes * count,
            settings=None,
            selector=selector_name,
        )
        for n in stream_counts
        for selector_name in ("naive", "knowledge")
    ]
    table = measure_points(
        specs, repeats=repeats, env_config=template, base_seed=base_seed,
        jobs=jobs, observe=observe,
    )
    return NodeSelectionAblation(
        results=[
            SelectorResult(
                selector_name=selector_name,
                n=n,
                mbps=table[(selector_name, n)].mbps,
                observations=table[(selector_name, n)].observations,
            )
            for (selector_name, n) in (spec.key for spec in specs)
        ]
    )


# ----------------------------------------------------------------------
# Buffer-size choice per communication pattern
# ----------------------------------------------------------------------
@dataclass
class BufferChoiceAblation:
    """Optimal buffer size for point-to-point vs merging streams."""

    p2p: Dict[int, BandwidthResult]
    merge: Dict[int, BandwidthResult]

    def optimal_buffer(self, pattern: str) -> int:
        """The buffer size maximizing mean bandwidth for a pattern."""
        table = {"p2p": self.p2p, "merge": self.merge}[pattern]
        return max(table, key=lambda size: table[size].mean_mbps)

    def format_table(self) -> str:
        sizes = sorted(set(self.p2p) | set(self.merge))
        lines = [
            "Ablation: buffer size by communication pattern (Mbps)",
            f"{'buffer':>10}  {'p2p':>14}  {'merge':>14}",
        ]
        for size in sizes:
            p = self.p2p.get(size)
            m = self.merge.get(size)
            lines.append(
                f"{size:>10}  {str(p) if p else '-':>14}  {str(m) if m else '-':>14}"
            )
        lines.append(
            f"optimal: p2p={self.optimal_buffer('p2p')} B, "
            f"merge={self.optimal_buffer('merge')} B"
        )
        return "\n".join(lines)


def run_buffer_choice_ablation(
    buffer_sizes: Sequence[int] = (500, 1000, 2000, 10_000, 100_000, 1_000_000),
    repeats: int = 3,
    env_config: Optional[EnvironmentConfig] = None,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
    jobs: int = 1,
    observe: str = OBSERVE_NONE,
) -> BufferChoiceAblation:
    """Sweep buffer sizes for both patterns (balanced nodes, double buffers)."""
    if obs_factory is not None:
        p2p: Dict[int, BandwidthResult] = {}
        merge: Dict[int, BandwidthResult] = {}
        for buffer_bytes in buffer_sizes:
            array_bytes, count = scaled_workload(buffer_bytes, target_buffers=800)
            settings = ExecutionSettings(
                mpi_buffer_bytes=buffer_bytes, double_buffering=True
            )
            p2p[buffer_bytes] = measure_query_bandwidth(
                point_to_point_query(array_bytes, count),
                payload_bytes=array_bytes * count,
                settings=settings,
                repeats=repeats,
                env_config=env_config,
                obs_factory=obs_factory,
            )
            merge[buffer_bytes] = measure_query_bandwidth(
                merge_query(array_bytes, count, 1, 4),
                payload_bytes=2 * array_bytes * count,
                settings=settings,
                repeats=repeats,
                env_config=env_config,
                obs_factory=obs_factory,
            )
        return BufferChoiceAblation(p2p=p2p, merge=merge)
    specs: List[PointSpec] = []
    for buffer_bytes in buffer_sizes:
        array_bytes, count = scaled_workload(buffer_bytes, target_buffers=800)
        settings = ExecutionSettings(mpi_buffer_bytes=buffer_bytes, double_buffering=True)
        specs.append(
            PointSpec(
                key=("p2p", buffer_bytes),
                query=point_to_point_query(array_bytes, count),
                payload_bytes=array_bytes * count,
                settings=settings,
            )
        )
        specs.append(
            PointSpec(
                key=("merge", buffer_bytes),
                query=merge_query(array_bytes, count, 1, 4),
                payload_bytes=2 * array_bytes * count,
                settings=settings,
            )
        )
    table = measure_points(
        specs, repeats=repeats, env_config=env_config, jobs=jobs, observe=observe
    )
    return BufferChoiceAblation(
        p2p={size: table[("p2p", size)]
             for (kind, size) in (s.key for s in specs) if kind == "p2p"},
        merge={size: table[("merge", size)]
               for (kind, size) in (s.key for s in specs) if kind == "merge"},
    )
