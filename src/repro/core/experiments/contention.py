"""Concurrent-CQ contention demo: two queries sharing one I/O-node path.

Figure 15's central observation is that inbound queries whose BlueGene
receivers sit in a single pset are bottlenecked by that pset's one I/O
node.  This demo makes the same point with *concurrent* continuous
queries: two independent Query-3-shaped CQs (one back-end sender node
each, receivers pinned to ``inPset(1)``) are deployed together on one
environment, so both result streams funnel through pset 1's I/O-node
tree links at the same time.

Each query is first measured solo on a fresh environment (same seed),
then both run concurrently via
:class:`~repro.core.multiquery.MultiQuerySession`; the reported
interference ratio (concurrent/solo bandwidth) quantifies how much of
the shared path each CQ loses to the other.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.coordinator.deployer import Deployer
from repro.core.multiquery import MultiQueryResult, MultiQuerySession
from repro.hardware.environment import EnvironmentConfig, shared_template
from repro.scsql.plan import DeploymentPlan, compile_plan
from repro.util.units import MEGA

#: Back-end sender node per query: distinct senders, so the only shared
#: resource is the receiving pset's I/O-node path.
DEFAULT_SENDERS: Dict[str, int] = {"qA": 1, "qB": 2}

#: The contended pset (both queries pin their receivers into it).
SHARED_PSET = 1


def contending_query(sender_node: int, n: int, array_bytes: int, count: int) -> str:
    """A Figure-15 Query-3-shaped CQ with an explicit back-end sender node.

    ``n`` array streams leave back-end node ``sender_node``; each is
    counted on its own compute node inside pset :data:`SHARED_PSET`, and
    the counts are summed on one further BlueGene node.
    """
    return f"""
select extract(c) from
bag of sp a, bag of sp b, sp c, integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
  'bg', inPset({SHARED_PSET}))
and a=spv(
  (select gen_array({array_bytes},{count})
   from integer i where i in iota(1,n)),
  'be', {sender_node})
and n={n};
"""


def run_contention_demo(
    n: int = 2,
    array_bytes: int = 3_000_000,
    count: int = 5,
    env_config: Optional[EnvironmentConfig] = None,
    seed: int = 0,
    senders: Optional[Dict[str, int]] = None,
    live_window: Optional[float] = None,
) -> MultiQueryResult:
    """Measure two CQs solo, then concurrently, on same-seed environments.

    Each plan is compiled once and deployed three times — twice solo (one
    fresh environment per query, so the baselines are undisturbed) and
    once into the shared concurrent session — exercising exactly the
    compile-once lifecycle the deployment plans exist for.

    Returns the concurrent :class:`~repro.core.multiquery.MultiQueryResult`
    with each outcome's ``solo_mbps`` baseline attached, so
    ``outcome.interference`` is the concurrent/solo bandwidth ratio.
    ``live_window`` (simulated seconds) additionally watches the
    concurrent run with a :class:`~repro.obs.live.LiveSampler`, attached
    finalized as ``result.live``; the solo baselines stay uninstrumented.
    """
    config = (env_config or EnvironmentConfig()).with_seed(seed)
    payload = n * array_bytes * count
    plans: Dict[str, DeploymentPlan] = {
        label: compile_plan(contending_query(sender, n, array_bytes, count))
        for label, sender in (senders or DEFAULT_SENDERS).items()
    }
    solo: Dict[str, float] = {}
    for label, plan in plans.items():
        env = shared_template(config).fork(seed=config.seed)
        report = Deployer(env).run(plan)
        solo[label] = payload * 8.0 / report.duration / MEGA
    sampler = None
    obs = None
    if live_window is not None:
        from repro.obs.instrument import Instrumentation
        from repro.obs.live import LiveSampler
        from repro.obs.tracer import NULL_TRACER

        sampler = LiveSampler(window=live_window)
        obs = Instrumentation(tracer=NULL_TRACER, live=sampler)
    shared_env = shared_template(config).fork(seed=config.seed, obs=obs)
    session = MultiQuerySession(shared_env)
    for label, plan in plans.items():
        session.submit(plan, payload_bytes=payload, label=label)
    result = session.run()
    session.teardown()
    if sampler is not None:
        sampler.finalize(shared_env.sim.now)
        result.live = sampler
    for outcome in result.outcomes:
        outcome.solo_mbps = solo[outcome.label]
    return result
