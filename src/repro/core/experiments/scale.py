"""Scale figure: the DES kernel driven at a 4096-node torus.

ROADMAP's north star asks for sweeps "as fast as the hardware allows" far
past the paper's 8–16 node figures.  This experiment proves the kernel
holds up at two orders of magnitude more hardware than any paper figure:

* **Kernel throughput** — thousands of concurrent stream timers ticking in
  synchronized bursts on one simulator (the calendar queue's target access
  pattern: every tick instant is one huge same-timestamp bucket).  Reported
  as ``events_per_sec``, the headline number the scheduler rewrite moves;
  the BENCH gate compares it under the wall-clock tolerance.

* **Concurrent continuous queries** — hundreds to thousands of
  point-to-point stream queries submitted to one
  :class:`~repro.core.multiquery.MultiQuerySession` on a 16x16x16 BlueGene
  partition (4096 compute nodes, 512 psets).  Placement is index-free
  (``'bg'`` with no node index), so the deployer's round-robin allocation
  spreads the streams across the whole partition deterministically.  The
  aggregate bandwidth is simulated and seeded, hence bit-stable and gated
  at the tight default tolerance.

The run also asserts the bounded route memo stays bounded: a 16x16x16
torus has 16.7M ordered node pairs, and the pre-bound table would grow
without limit as placements spread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.multiquery import MultiQuerySession
from repro.engine.settings import ExecutionSettings
from repro.hardware.bluegene import BlueGeneConfig
from repro.hardware.environment import EnvironmentConfig, shared_template
from repro.scsql.plan import compile_plan
from repro.sim import Simulator, Timeout
from repro.util.errors import MeasurementError

#: The scale partition: 4096 compute nodes, 512 psets — 10x+ the number of
#: nodes any paper figure touches.
DEFAULT_SHAPE: Tuple[int, int, int] = (16, 16, 16)

#: Kernel microbench: concurrent tick streams and ticks per stream.
DEFAULT_STREAMS = 4096
DEFAULT_TICKS = 120

#: Kernel microbench repeats; the best rate is reported (host noise only
#: ever slows a run down, so max-of-N is the stable estimator).
DEFAULT_KERNEL_REPEATS = 3

#: Concurrent stream queries in the MultiQuerySession portion.
DEFAULT_QUERIES = 1024

#: Per-query workload (volume kept small: the point is concurrency).
DEFAULT_ARRAY_BYTES = 100_000
DEFAULT_ARRAY_COUNT = 2

#: MPI buffer size for the session's streams (20 buffers per query).
DEFAULT_BUFFER_BYTES = 10_000

#: Ceiling for the bounded route memo's resident size on the scale run.
ROUTE_MEMO_BYTES_CEILING = 32 * 1024 * 1024


def scale_config(
    shape: Tuple[int, int, int] = DEFAULT_SHAPE, seed: int = 0
) -> EnvironmentConfig:
    """Environment config for a scale-run torus of ``shape``."""
    return EnvironmentConfig(
        bluegene=BlueGeneConfig(torus_shape=shape), seed=seed
    )


def scale_stream_query(array_bytes: int, count: int) -> str:
    """An index-free intra-BG point-to-point stream query.

    Unlike Figure 6's query, neither stream process names a node index:
    every submission lets the deployer's round-robin allocation pick the
    next free pair, so repeated submits of one compiled plan tile the
    partition instead of colliding on nodes 0 and 1.
    """
    return f"""
select extract(b)
from sp a, sp b
where b=sp(streamof(count(extract(a))), 'bg')
and a=sp(gen_array({array_bytes},{count}), 'bg');
"""


class _TickStream:
    """One periodic stream timer: a self-rescheduling Timeout chain.

    The callback is bound once and reused across ticks; each tick costs
    exactly one Timeout (allocate + push) and one dispatch — the leanest
    event-driven spelling of "a stream delivers a buffer every period".
    """

    __slots__ = ("sim", "remaining", "period", "_cb")

    def __init__(self, sim: Simulator, period: float, ticks: int):
        self.sim = sim
        self.period = period
        self.remaining = ticks
        self._cb = self._fire
        Timeout(sim, period).callbacks.append(self._cb)

    def _fire(self, event) -> None:
        remaining = self.remaining - 1
        if remaining:
            self.remaining = remaining
            Timeout(self.sim, self.period).callbacks.append(self._cb)


@dataclass(frozen=True)
class ScaleResult:
    """What one scale run measured."""

    shape: Tuple[int, int, int]
    kernel_streams: int
    kernel_events: int
    kernel_wall_s: float
    kernel_events_per_sec: float
    mqs_queries: int
    mqs_events: int
    mqs_wall_s: float
    mqs_mbps: float
    route_entries: int
    route_memo_bytes: int

    @property
    def figure(self) -> str:
        x, y, z = self.shape
        return f"scale[torus={x}x{y}x{z}]"

    def metrics(self) -> Dict[str, float]:
        """The BENCH metric family of this run.

        ``events_per_sec`` / ``wall_s`` names fall in the wall-clock
        tolerance class of :mod:`repro.core.bench`; ``mqs_mbps`` is
        simulated (seeded, bit-stable) and gated at the default tolerance.
        The memory footprint is asserted inside :func:`run_scale`, not
        gated — a *smaller* memo must never read as a regression.
        """
        figure = self.figure
        return {
            f"{figure}/events_per_sec": self.kernel_events_per_sec,
            f"{figure}/wall_s": self.kernel_wall_s + self.mqs_wall_s,
            f"{figure}/mqs_mbps": self.mqs_mbps,
        }

    def format_table(self) -> str:
        x, y, z = self.shape
        return "\n".join([
            f"Scale figure: {x}x{y}x{z} torus "
            f"({x * y * z} compute nodes)",
            f"  kernel: {self.kernel_streams} tick streams, "
            f"{self.kernel_events} events in {self.kernel_wall_s:.2f} s "
            f"= {self.kernel_events_per_sec / 1e6:.2f}M events/sec",
            f"  multiquery: {self.mqs_queries} concurrent stream queries, "
            f"{self.mqs_events} events in {self.mqs_wall_s:.2f} s, "
            f"aggregate {self.mqs_mbps:.0f} Mbps",
            f"  route memo: {self.route_entries} entries, "
            f"{self.route_memo_bytes / 1e6:.1f} MB resident",
        ])


def _scaled_defaults(shape: Tuple[int, int, int]) -> Tuple[int, int]:
    """(streams, queries) matched to the partition size.

    The full 4096-node shape runs the headline workload; smaller smoke
    shapes (CI runs an 8x8x8) scale the concurrency down with the node
    count so the figure stays a few seconds.
    """
    nodes = shape[0] * shape[1] * shape[2]
    streams = min(DEFAULT_STREAMS, max(nodes, 256))
    queries = min(DEFAULT_QUERIES, max(nodes // 4, 16))
    return streams, queries


def run_scale(
    shape: Tuple[int, int, int] = DEFAULT_SHAPE,
    streams: Optional[int] = None,
    ticks: int = DEFAULT_TICKS,
    queries: Optional[int] = None,
    array_bytes: int = DEFAULT_ARRAY_BYTES,
    count: int = DEFAULT_ARRAY_COUNT,
    kernel_repeats: int = DEFAULT_KERNEL_REPEATS,
    progress: Optional[Callable[[str], None]] = None,
) -> ScaleResult:
    """Run the scale figure and return its measurements.

    Both portions fork the shared 4096-node topology template instead of
    rebuilding it: the kernel repeats fork it per run, and the multi-query
    session forks it with the route memo already warmed by any earlier
    fork.  Raises :class:`~repro.util.errors.MeasurementError` if the
    bounded route memo exceeds its entry bound or
    :data:`ROUTE_MEMO_BYTES_CEILING`.
    """
    default_streams, default_queries = _scaled_defaults(shape)
    if streams is None:
        streams = default_streams
    if queries is None:
        queries = default_queries
    template = shared_template(scale_config(shape))

    # Kernel tick-stream microbench: every period boundary is one bucket of
    # `streams` simultaneous events.
    best_rate = 0.0
    best_wall = 0.0
    kernel_events = 0
    for repeat in range(max(1, kernel_repeats)):
        env = template.fork(seed=repeat)
        sim = env.sim
        for _ in range(streams):
            _TickStream(sim, 1.0, ticks)
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
        kernel_events = sim.events_dispatched
        rate = kernel_events / wall
        if rate > best_rate:
            best_rate = rate
            best_wall = wall
        if progress is not None:
            progress(
                f"scale kernel repeat {repeat}: {kernel_events} events, "
                f"{rate / 1e6:.2f}M events/sec"
            )

    # Concurrent continuous queries on the shared partition.
    plan = compile_plan(scale_stream_query(array_bytes, count))
    settings = ExecutionSettings(
        mpi_buffer_bytes=DEFAULT_BUFFER_BYTES, double_buffering=True
    )
    env = template.fork(seed=0)
    session = MultiQuerySession(env, settings=settings)
    payload = array_bytes * count
    started = time.perf_counter()
    for index in range(queries):
        session.submit(plan, payload_bytes=payload, label=f"s{index}")
    result = session.run()
    mqs_wall = time.perf_counter() - started
    session.teardown()
    mqs_mbps = sum(outcome.mbps for outcome in result.outcomes)
    mqs_events = env.sim.events_dispatched
    if progress is not None:
        progress(
            f"scale multiquery: {queries} queries, {mqs_events} events, "
            f"aggregate {mqs_mbps:.0f} Mbps in {mqs_wall:.2f} s wall"
        )

    routes = template.routes
    route_entries = len(routes)
    route_bytes = routes.approx_bytes()
    if route_entries > routes.max_entries:
        raise MeasurementError(
            f"route memo exceeded its bound: {route_entries} entries "
            f"> max_entries={routes.max_entries}"
        )
    if route_bytes > ROUTE_MEMO_BYTES_CEILING:
        raise MeasurementError(
            f"route memo footprint {route_bytes} B exceeds the "
            f"{ROUTE_MEMO_BYTES_CEILING} B scale ceiling"
        )

    return ScaleResult(
        shape=shape,
        kernel_streams=streams,
        kernel_events=kernel_events,
        kernel_wall_s=best_wall,
        kernel_events_per_sec=best_rate,
        mqs_queries=queries,
        mqs_events=mqs_events,
        mqs_wall_s=mqs_wall,
        mqs_mbps=mqs_mbps,
        route_entries=route_entries,
        route_memo_bytes=route_bytes,
    )
