"""Figure 8: intra-BlueGene stream merging under two node selections.

Two generator RPs (``a``, ``b``) stream arrays to a counting RP ``c`` that
merges them.  The paper's Figure 7 topologies are selected with explicit
allocation sequences:

* **sequential** (7A): x=1, y=2 — nodes 0,1,2 in a torus line, so traffic
  from b is routed through a's (busy) communication co-processor;
* **balanced** (7B): x=1, y=4 — a and b are torus neighbours of c in
  different dimensions, so both streams arrive over independent channels.

Published shape being reproduced:

1. bandwidth depends strongly on the node selection (balanced wins, up to
   ~60% — section 5);
2. double buffering matters less than for point-to-point streaming;
3. buffers below ~10 KB are much slower for merging than point-to-point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.experiments.fig6 import scaled_workload
from repro.core.measurement import (
    BandwidthResult,
    PointSpec,
    measure_points,
    measure_query_bandwidth,
)
from repro.core.parallel import OBSERVE_NONE
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import EnvironmentConfig
from repro.obs.instrument import Instrumentation

#: Buffer sizes swept by default (Figure 8 reaches further right).
DEFAULT_BUFFER_SIZES: Tuple[int, ...] = (
    1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
)

#: Node selections of Figure 7 (x, y): sequential routes b through a.
SEQUENTIAL = (1, 2)
BALANCED = (1, 4)


def merge_query(array_bytes: int, count: int, x: int, y: int) -> str:
    """The paper's stream-merging SCSQL query (section 3.1)."""
    return f"""
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({{a,b}})), 'bg', 0)
and a=sp(gen_array({array_bytes},{count}), 'bg', {x})
and b=sp(gen_array({array_bytes},{count}), 'bg', {y});
"""


@dataclass(frozen=True)
class Fig8Point:
    """One measured point of the Figure 8 curves."""

    buffer_bytes: int
    balanced: bool
    double_buffering: bool
    result: BandwidthResult

    @property
    def mbps(self) -> float:
        return self.result.mean_mbps


@dataclass
class Fig8Result:
    """The Figure 8 sweep: four curves (selection x buffering mode)."""

    points: List[Fig8Point]

    def curve(self, balanced: bool, double_buffering: bool) -> List[Fig8Point]:
        selected = [
            p
            for p in self.points
            if p.balanced is balanced and p.double_buffering is double_buffering
        ]
        return sorted(selected, key=lambda p: p.buffer_bytes)

    def best(self, balanced: bool, double_buffering: bool) -> Fig8Point:
        return max(self.curve(balanced, double_buffering), key=lambda p: p.mbps)

    def balanced_advantage(self, double_buffering: bool = True) -> float:
        """Largest balanced/sequential ratio at any common buffer size.

        This is the paper's "stream merging performs up to 60% better if no
        busy intermediate nodes are involved" — the comparison is between
        the two node selections under otherwise identical settings.
        """
        sequential = {p.buffer_bytes: p.mbps for p in self.curve(False, double_buffering)}
        balanced = {p.buffer_bytes: p.mbps for p in self.curve(True, double_buffering)}
        common = set(sequential) & set(balanced)
        if not common:
            raise ValueError("no common buffer sizes between the two curves")
        return max(balanced[size] / sequential[size] for size in common)

    def format_table(self) -> str:
        """Figure 8 as text: total input bandwidth at c (Mbps)."""
        lines = [
            "Figure 8: intra-BG stream merging bandwidth at node c (Mbps)",
            f"{'buffer':>10}  {'seq/single':>14}  {'seq/double':>14}"
            f"  {'bal/single':>14}  {'bal/double':>14}",
        ]
        sizes = sorted({p.buffer_bytes for p in self.points})
        table = {
            (p.buffer_bytes, p.balanced, p.double_buffering): p for p in self.points
        }
        for size in sizes:
            cells = []
            for balanced in (False, True):
                for double in (False, True):
                    point = table.get((size, balanced, double))
                    cells.append(str(point.result) if point else "-")
            lines.append(
                f"{size:>10}  {cells[0]:>14}  {cells[1]:>14}  {cells[2]:>14}  {cells[3]:>14}"
            )
        return "\n".join(lines)


def run_fig8(
    buffer_sizes: Sequence[int] = DEFAULT_BUFFER_SIZES,
    repeats: int = 5,
    target_buffers: int = 1200,
    env_config: Optional[EnvironmentConfig] = None,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
    jobs: int = 1,
    observe: str = OBSERVE_NONE,
) -> Fig8Result:
    """Run the Figure 8 sweep and return all four curves.

    ``obs_factory`` (repeat index -> instrumentation) observes every repeat
    of every point and forces in-process execution; with ``jobs > 1`` all
    (point, repeat) simulations fan out over worker processes.  See
    :func:`repro.core.measurement.measure_query_bandwidth`.
    """
    specs: List[PointSpec] = []
    for buffer_bytes in buffer_sizes:
        array_bytes, count = scaled_workload(buffer_bytes, target_buffers)
        for balanced in (False, True):
            x, y = BALANCED if balanced else SEQUENTIAL
            query = merge_query(array_bytes, count, x, y)
            for double_buffering in (False, True):
                settings = ExecutionSettings(
                    mpi_buffer_bytes=buffer_bytes, double_buffering=double_buffering
                )
                specs.append(
                    PointSpec(
                        key=(buffer_bytes, balanced, double_buffering),
                        query=query,
                        payload_bytes=2 * array_bytes * count,
                        settings=settings,
                    )
                )
    if obs_factory is not None:
        results = {
            spec.key: measure_query_bandwidth(
                spec.query,
                payload_bytes=spec.payload_bytes,
                settings=spec.settings,
                repeats=repeats,
                env_config=env_config,
                obs_factory=obs_factory,
            )
            for spec in specs
        }
    else:
        results = measure_points(
            specs, repeats=repeats, env_config=env_config, jobs=jobs, observe=observe
        )
    return Fig8Result(
        points=[
            Fig8Point(
                buffer_bytes=buffer_bytes,
                balanced=balanced,
                double_buffering=double_buffering,
                result=results[(buffer_bytes, balanced, double_buffering)],
            )
            for (buffer_bytes, balanced, double_buffering) in (s.key for s in specs)
        ]
    )
