"""Experiment definitions reproducing the paper's figures and conclusions.

One module per measured figure (6, 8, 15) plus the ablations suggested by
the paper's conclusions; each exposes a ``run_*`` function that sweeps the
figure's parameters through the real SCSQL pipeline and returns structured
results with a text rendering.
"""

from repro.core.experiments.ablations import (
    BufferChoiceAblation,
    NodeSelectionAblation,
    automatic_inbound_query,
    run_buffer_choice_ablation,
    run_node_selection_ablation,
)
from repro.core.experiments.contention import (
    contending_query,
    run_contention_demo,
)
from repro.core.experiments.fig6 import (
    Fig6Point,
    Fig6Result,
    point_to_point_query,
    run_fig6,
    scaled_workload,
)
from repro.core.experiments.fig8 import (
    BALANCED,
    SEQUENTIAL,
    Fig8Point,
    Fig8Result,
    merge_query,
    run_fig8,
)
from repro.core.experiments.fig15 import (
    Fig15Point,
    Fig15Result,
    inbound_query,
    run_fig15,
)
from repro.core.experiments.scaling import (
    ScalingPoint,
    ScalingStudy,
    run_scaling_study,
)

__all__ = [
    "run_fig6",
    "Fig6Result",
    "Fig6Point",
    "point_to_point_query",
    "scaled_workload",
    "run_fig8",
    "Fig8Result",
    "Fig8Point",
    "merge_query",
    "SEQUENTIAL",
    "BALANCED",
    "run_fig15",
    "Fig15Result",
    "Fig15Point",
    "inbound_query",
    "run_node_selection_ablation",
    "NodeSelectionAblation",
    "run_buffer_choice_ablation",
    "BufferChoiceAblation",
    "automatic_inbound_query",
    "run_scaling_study",
    "ScalingStudy",
    "ScalingPoint",
    "run_contention_demo",
    "contending_query",
]
