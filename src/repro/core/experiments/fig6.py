"""Figure 6: intra-BlueGene point-to-point streaming bandwidth.

The measured query is the paper's Figure 5 set-up: ``a`` generates a finite
stream of large arrays on BlueGene compute node 1, ``b`` counts them on
node 0, and only the count leaves the BlueGene — "the total time measured
is dominated by the time for streaming the data from a to b".  The buffer
size of the MPI stream carrier is swept, with single and double buffering.

Published shape being reproduced:

* optimal buffer size is 1000 bytes for both buffering modes;
* bandwidth falls for smaller buffers (1 KB minimum torus message) and for
  larger buffers (cache misses);
* double buffering pays off for large buffers.

Runs are volume-scaled: the paper streams 100 x 3 MB; the simulation keeps
the per-run buffer count near a target instead, which leaves steady-state
bandwidth unchanged while keeping small-buffer sweeps tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.measurement import (
    BandwidthResult,
    PointSpec,
    measure_points,
    measure_query_bandwidth,
)
from repro.core.parallel import OBSERVE_NONE
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import EnvironmentConfig
from repro.obs.instrument import Instrumentation

#: Buffer sizes swept by default (log-spaced 100 B .. 1 MB, as in Figure 6).
DEFAULT_BUFFER_SIZES: Tuple[int, ...] = (
    100, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000,
    100_000, 200_000, 500_000, 1_000_000,
)

#: Paper workload: 100 arrays of 3 MB.
PAPER_ARRAY_BYTES = 3_000_000
PAPER_ARRAY_COUNT = 100


def point_to_point_query(array_bytes: int, count: int) -> str:
    """The paper's intra-BG point-to-point SCSQL query (section 3.1)."""
    return f"""
select extract(b)
from sp a, sp b
where b=sp(streamof(count(extract(a))), 'bg', 0)
and a=sp(gen_array({array_bytes},{count}), 'bg', 1);
"""


def scaled_workload(
    buffer_bytes: int,
    target_buffers: int = 1500,
    max_array_bytes: int = PAPER_ARRAY_BYTES,
) -> Tuple[int, int]:
    """(array_bytes, count) streaming roughly ``target_buffers`` buffers.

    Steady-state bandwidth is volume-independent, so runs are scaled to a
    fixed buffer count: small-buffer points use smaller arrays (otherwise a
    single 3 MB array would fragment into 30,000 simulation events at
    B=100), large-buffer points use the paper's 3 MB arrays.
    """
    count = 8
    array_bytes = (buffer_bytes * target_buffers) // count
    array_bytes = max(30_000, min(max_array_bytes, array_bytes))
    return array_bytes, count


@dataclass(frozen=True)
class Fig6Point:
    """One measured point of the Figure 6 curves."""

    buffer_bytes: int
    double_buffering: bool
    result: BandwidthResult

    @property
    def mbps(self) -> float:
        return self.result.mean_mbps


@dataclass
class Fig6Result:
    """The full Figure 6 sweep: two curves over buffer size."""

    points: List[Fig6Point]

    def curve(self, double_buffering: bool) -> List[Fig6Point]:
        """One buffering mode's curve, ordered by buffer size."""
        selected = [p for p in self.points if p.double_buffering is double_buffering]
        return sorted(selected, key=lambda p: p.buffer_bytes)

    def optimum(self, double_buffering: bool) -> Fig6Point:
        """The highest-bandwidth point of one curve."""
        return max(self.curve(double_buffering), key=lambda p: p.mbps)

    def format_table(self) -> str:
        """Figure 6 as text: bandwidth vs buffer size, both modes."""
        lines = [
            "Figure 6: intra-BG point-to-point streaming bandwidth (Mbps)",
            f"{'buffer':>10}  {'single':>14}  {'double':>14}",
        ]
        singles = {p.buffer_bytes: p for p in self.curve(False)}
        doubles = {p.buffer_bytes: p for p in self.curve(True)}
        for size in sorted(set(singles) | set(doubles)):
            s = singles.get(size)
            d = doubles.get(size)
            lines.append(
                f"{size:>10}  "
                f"{str(s.result) if s else '-':>14}  "
                f"{str(d.result) if d else '-':>14}"
            )
        return "\n".join(lines)


def run_fig6(
    buffer_sizes: Sequence[int] = DEFAULT_BUFFER_SIZES,
    repeats: int = 5,
    target_buffers: int = 1500,
    env_config: Optional[EnvironmentConfig] = None,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
    jobs: int = 1,
    observe: str = OBSERVE_NONE,
) -> Fig6Result:
    """Run the Figure 6 sweep and return both curves.

    ``obs_factory`` (repeat index -> instrumentation) observes every repeat
    of every point and forces in-process execution; the instrumentations
    land on each point's ``result.observations``.  With ``jobs > 1`` (and
    no ``obs_factory``) all (point, repeat) simulations fan out over worker
    processes, bit-identically to a serial run.
    """
    specs: List[PointSpec] = []
    for buffer_bytes in buffer_sizes:
        array_bytes, count = scaled_workload(buffer_bytes, target_buffers)
        query = point_to_point_query(array_bytes, count)
        for double_buffering in (False, True):
            settings = ExecutionSettings(
                mpi_buffer_bytes=buffer_bytes, double_buffering=double_buffering
            )
            specs.append(
                PointSpec(
                    key=(buffer_bytes, double_buffering),
                    query=query,
                    payload_bytes=array_bytes * count,
                    settings=settings,
                )
            )
    if obs_factory is not None:
        results = {
            spec.key: measure_query_bandwidth(
                spec.query,
                payload_bytes=spec.payload_bytes,
                settings=spec.settings,
                repeats=repeats,
                env_config=env_config,
                obs_factory=obs_factory,
            )
            for spec in specs
        }
    else:
        results = measure_points(
            specs, repeats=repeats, env_config=env_config, jobs=jobs, observe=observe
        )
    return Fig6Result(
        points=[
            Fig6Point(
                buffer_bytes=buffer_bytes,
                double_buffering=double_buffering,
                result=results[(buffer_bytes, double_buffering)],
            )
            for (buffer_bytes, double_buffering) in (spec.key for spec in specs)
        ]
    )
