"""Figure 15: BlueGene inbound streaming bandwidth, Queries 1 through 6.

Six ways to inject n parallel array streams from the back-end Linux cluster
into the BlueGene (paper section 3.2), written as the paper's own SCSQL
queries with explicit allocation sequences:

=======  ========================  ==========================
Query    back-end senders          BlueGene receivers
=======  ========================  ==========================
Query 1  one node (``1``)          one compute node
Query 2  spread (``urr('be')``)    one compute node
Query 3  one node                  one pset (``inPset(1)``)
Query 4  spread                    one pset
Query 5  one node                  spread psets (``psetrr()``)
Query 6  spread                    spread psets
=======  ========================  ==========================

Published observations being reproduced:

1. Queries 1-4 (single I/O node) are far below Queries 5-6;
2. Queries 3/4 are slightly better than 1/2 at small n (two receiving
   compute nodes off-load one);
3. Query 5 peaks at ~920 Mbps and beats Query 6;
4. Query 1 beats Query 2 (co-locating back-end RPs wins);
5. Query 5 dips at n=5, where compute nodes start sharing the partition's
   four I/O nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.measurement import (
    BandwidthResult,
    PointSpec,
    measure_points,
    measure_query_bandwidth,
)
from repro.core.parallel import OBSERVE_NONE
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import EnvironmentConfig
from repro.obs.instrument import Instrumentation

#: The paper sweeps the number of parallel back-end streams.
DEFAULT_STREAM_COUNTS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)

#: Paper workload per stream: 100 x 3 MB arrays (count scaled for speed).
PAPER_ARRAY_BYTES = 3_000_000
DEFAULT_ARRAY_COUNT = 10

QUERY_NUMBERS = (1, 2, 3, 4, 5, 6)

#: Allocation expressions per query: (back-end allocation, BlueGene allocation
#: for the receiving spv; None = single receiving compute node).
_BE_SINGLE = "1"
_BE_SPREAD = "urr('be')"
_BG_PSET = "inPset(1)"
_BG_SPREAD = "psetrr()"

_QUERY_SHAPES: Dict[int, Tuple[str, Optional[str]]] = {
    1: (_BE_SINGLE, None),
    2: (_BE_SPREAD, None),
    3: (_BE_SINGLE, _BG_PSET),
    4: (_BE_SPREAD, _BG_PSET),
    5: (_BE_SINGLE, _BG_SPREAD),
    6: (_BE_SPREAD, _BG_SPREAD),
}


def inbound_query(query_number: int, n: int, array_bytes: int, count: int) -> str:
    """The SCSQL text of Query ``query_number`` for ``n`` input streams.

    Queries 1/2 merge all streams on one BlueGene compute node; Queries 3-6
    count each stream on its own receiving compute node and sum the counts
    (the paper's exact formulations, section 3.2).
    """
    if query_number not in _QUERY_SHAPES:
        raise ValueError(f"no such inbound query: {query_number}")
    be_alloc, bg_alloc = _QUERY_SHAPES[query_number]
    if bg_alloc is None:
        return f"""
select extract(c) from
bag of sp a, sp b, sp c, integer n
where c=sp(extract(b), 'bg')
and b=sp(count(merge(a)), 'bg')
and a=spv(
  (select gen_array({array_bytes},{count})
   from integer i where i in iota(1,n)),
  'be', {be_alloc})
and n={n};
"""
    return f"""
select extract(c) from
bag of sp a, bag of sp b, sp c, integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
  'bg', {bg_alloc})
and a=spv(
  (select gen_array({array_bytes},{count})
   from integer i where i in iota(1,n)),
  'be', {be_alloc})
and n={n};
"""


@dataclass(frozen=True)
class Fig15Point:
    """One measured point: one query at one stream count."""

    query_number: int
    n: int
    result: BandwidthResult

    @property
    def mbps(self) -> float:
        return self.result.mean_mbps


@dataclass
class Fig15Result:
    """The Figure 15 sweep: six curves over n."""

    points: List[Fig15Point]

    def curve(self, query_number: int) -> List[Fig15Point]:
        selected = [p for p in self.points if p.query_number == query_number]
        return sorted(selected, key=lambda p: p.n)

    def at(self, query_number: int, n: int) -> Fig15Point:
        for point in self.points:
            if point.query_number == query_number and point.n == n:
                return point
        raise KeyError(f"no point for query {query_number}, n={n}")

    def peak(self, query_number: int) -> Fig15Point:
        return max(self.curve(query_number), key=lambda p: p.mbps)

    def format_table(self) -> str:
        """Figure 15 as text: inbound bandwidth (Mbps) per query and n."""
        queries = sorted({p.query_number for p in self.points})
        ns = sorted({p.n for p in self.points})
        header = f"{'n':>3}  " + "  ".join(f"{'Q%d' % q:>14}" for q in queries)
        lines = [
            "Figure 15: BG inbound streaming bandwidth (Mbps)",
            header,
        ]
        for n in ns:
            cells = []
            for q in queries:
                try:
                    cells.append(str(self.at(q, n).result))
                except KeyError:
                    cells.append("-")
            lines.append(f"{n:>3}  " + "  ".join(f"{c:>14}" for c in cells))
        return "\n".join(lines)


def run_fig15(
    stream_counts: Sequence[int] = DEFAULT_STREAM_COUNTS,
    queries: Sequence[int] = QUERY_NUMBERS,
    repeats: int = 5,
    array_bytes: int = PAPER_ARRAY_BYTES,
    array_count: int = DEFAULT_ARRAY_COUNT,
    env_config: Optional[EnvironmentConfig] = None,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
    jobs: int = 1,
    observe: str = OBSERVE_NONE,
) -> Fig15Result:
    """Run the Figure 15 sweep for the selected queries and stream counts.

    ``obs_factory`` (repeat index -> instrumentation) observes every repeat
    of every point and forces in-process execution; with ``jobs > 1`` all
    (point, repeat) simulations fan out over worker processes.  See
    :func:`repro.core.measurement.measure_query_bandwidth`.
    """
    settings = ExecutionSettings()
    specs: List[PointSpec] = [
        PointSpec(
            key=(query_number, n),
            query=inbound_query(query_number, n, array_bytes, array_count),
            payload_bytes=n * array_bytes * array_count,
            settings=settings,
        )
        for query_number in queries
        for n in stream_counts
    ]
    if obs_factory is not None:
        results = {
            spec.key: measure_query_bandwidth(
                spec.query,
                payload_bytes=spec.payload_bytes,
                settings=spec.settings,
                repeats=repeats,
                env_config=env_config,
                obs_factory=obs_factory,
            )
            for spec in specs
        }
    else:
        results = measure_points(
            specs, repeats=repeats, env_config=env_config, jobs=jobs, observe=observe
        )
    return Fig15Result(
        points=[
            Fig15Point(query_number=query_number, n=n, result=results[(query_number, n)])
            for (query_number, n) in (spec.key for spec in specs)
        ]
    )
