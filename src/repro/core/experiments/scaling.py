"""Extension: inbound-bandwidth scaling with larger partitions (future work).

Paper section 5: "In the current hardware configuration, we have only four
I/O nodes and four nodes in the back-end cluster.  It remains to be
investigated what happens for large amounts of back-end and I/O nodes."

This experiment grows the simulated partition (4 -> 8 -> 16 psets/I-O
nodes, with matching back-end clusters) and measures the two best inbound
topologies from Figure 15 — Query 5 (one back-end host, spread psets) and
Query 6 (spread hosts, spread psets) — at n = number of I/O nodes.  It is
run under the stock 1 Gbps switch uplink and under a hypothetical 10 Gbps
uplink, which answers the question the paper leaves open:

* with the 2007-era 1 Gbps uplink, adding I/O nodes beyond ~2 buys nothing
  (the shared switch port is the ceiling);
* with a faster uplink, the spread-host topology scales with the partition
  until the receiving compute nodes become the bottleneck, while the
  single-host topology stays pinned at one back-end NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.experiments.fig15 import inbound_query
from repro.core.measurement import BandwidthResult, measure_query_bandwidth
from repro.engine.settings import ExecutionSettings
from repro.hardware.bluegene import BlueGeneConfig
from repro.hardware.environment import EnvironmentConfig
from repro.net.params import NetworkParams
from repro.obs.instrument import Instrumentation
from repro.util.units import gbps

#: Partition sizes swept: (torus shape, number of psets/I-O/back-end nodes).
DEFAULT_PARTITIONS: Tuple[Tuple[Tuple[int, int, int], int], ...] = (
    ((4, 4, 2), 4),
    ((4, 4, 4), 8),
    ((8, 4, 4), 16),
)

#: Uplink rates swept: the testbed's 1 Gbps and a hypothetical upgrade.
DEFAULT_UPLINKS_GBPS: Tuple[float, ...] = (1.0, 10.0)


@dataclass(frozen=True)
class ScalingPoint:
    """One measured point of the scaling study."""

    query_number: int
    num_io_nodes: int
    uplink_gbps: float
    result: BandwidthResult

    @property
    def mbps(self) -> float:
        return self.result.mean_mbps


@dataclass
class ScalingStudy:
    """Inbound peak bandwidth as the partition grows."""

    points: List[ScalingPoint]

    def at(self, query_number: int, num_io_nodes: int, uplink_gbps: float) -> ScalingPoint:
        for point in self.points:
            if (
                point.query_number == query_number
                and point.num_io_nodes == num_io_nodes
                and point.uplink_gbps == uplink_gbps
            ):
                return point
        raise KeyError(
            f"no point for query {query_number}, {num_io_nodes} I/O nodes, "
            f"{uplink_gbps} Gbps uplink"
        )

    def format_table(self) -> str:
        sizes = sorted({p.num_io_nodes for p in self.points})
        uplinks = sorted({p.uplink_gbps for p in self.points})
        queries = sorted({p.query_number for p in self.points})
        lines = ["Extension: inbound scaling with partition size (Mbps)"]
        header = f"{'io-nodes':>9}"
        for uplink in uplinks:
            for q in queries:
                header += f"  {'Q%d@%gG' % (q, uplink):>14}"
        lines.append(header)
        for size in sizes:
            row = f"{size:>9}"
            for uplink in uplinks:
                for q in queries:
                    try:
                        row += f"  {str(self.at(q, size, uplink).result):>14}"
                    except KeyError:
                        row += f"  {'-':>14}"
            lines.append(row)
        return "\n".join(lines)


def _environment(
    shape: Tuple[int, int, int], backend_nodes: int, uplink_gbps: float
) -> EnvironmentConfig:
    base = NetworkParams()
    params = base.with_overrides(
        ethernet=replace(base.ethernet, uplink_rate=gbps(uplink_gbps))
    )
    return EnvironmentConfig(
        bluegene=BlueGeneConfig(torus_shape=shape),
        backend_nodes=backend_nodes,
        params=params,
    )


def run_scaling_study(
    partitions: Sequence[Tuple[Tuple[int, int, int], int]] = DEFAULT_PARTITIONS,
    uplinks_gbps: Sequence[float] = DEFAULT_UPLINKS_GBPS,
    queries: Sequence[int] = (5, 6),
    repeats: int = 3,
    array_bytes: int = 3_000_000,
    array_count: int = 5,
    obs_factory: Optional[Callable[[int], Instrumentation]] = None,
    jobs: int = 1,
    observe: str = "none",
) -> ScalingStudy:
    """Measure inbound peak bandwidth across partition sizes and uplinks.

    Each point uses its own environment shape, so with ``jobs > 1`` the
    repeats of one point run in parallel (points stay sequential).
    """
    points: List[ScalingPoint] = []
    for shape, num_io in partitions:
        for uplink in uplinks_gbps:
            env_config = _environment(shape, num_io, uplink)
            for query_number in queries:
                n = num_io  # one stream per I/O node: the Figure 15 sweet spot
                query = inbound_query(query_number, n, array_bytes, array_count)
                result = measure_query_bandwidth(
                    query,
                    payload_bytes=n * array_bytes * array_count,
                    settings=ExecutionSettings(),
                    repeats=repeats,
                    env_config=env_config,
                    obs_factory=obs_factory,
                    jobs=jobs,
                    observe=observe,
                )
                points.append(
                    ScalingPoint(
                        query_number=query_number,
                        num_io_nodes=num_io,
                        uplink_gbps=uplink,
                        result=result,
                    )
                )
    return ScalingStudy(points=points)
