"""Adaptive runtime: measurement-driven live migration of stream processes.

This module closes the observe -> decide -> act loop across the stack:

* **observe** — the :class:`~repro.obs.live.LiveSampler` windows carry
  per-SP measured throughput, and the
  :class:`~repro.obs.health.ContinuousBottleneckDetector` pushes typed
  :class:`~repro.obs.health.HealthEvent` transitions to subscribed
  listeners the moment a window closes;
* **decide** — :meth:`~repro.optimizer.placement.CostBasedPlacer.
  replace_one` scores moving each candidate SP with every other placement
  held fixed, its analytic bounds calibrated by live measured/predicted
  factors;
* **act** — :meth:`~repro.coordinator.deployer.Deployer.migrate` runs the
  quiesce -> snapshot -> re-verify -> redeploy -> replay lifecycle under a
  ``<label>+gN/`` generation prefix, with rollback when the
  :class:`~repro.analysis.verifier.PlanVerifier` rejects the move.

The controller is deliberately conservative: it reacts only to detector
state (whose high/low thresholds and up/down window counts are the first
hysteresis layer), requires a minimum predicted improvement factor (the
second), enforces a cooldown between migrations (the third), and stops
at a small migration budget (the fourth) — a restart-based migration
replays the stream from its sources, so thrash costs real time.

Everything here is a pure function of the simulated event stream: no
wall clock, no unseeded randomness, deterministic victim selection
(labels and sp ids are visited in sorted order, strict-improvement
tie-breaks keep the first).  The module is covered by the DET001–005
hot-path lint rules (see ``repro.analysis.lint.HOT_MODULES``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.coordinator.deployer import Deployment, MigrationRecord
from repro.hardware.environment import BLUEGENE
from repro.obs.health import HealthEvent
from repro.optimizer.placement import CostBasedPlacer
from repro.util.errors import AllocationError, QueryExecutionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.multiquery import MultiQueryResult, MultiQuerySession

__all__ = ["AdaptiveConfig", "AdaptiveController"]

#: Event kinds that arm an evaluation (a subject became unhealthy).
_ALERT_KINDS = ("saturated", "degraded")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive runtime (all in simulated units).

    Attributes:
        check_interval: Stepped-execution horizon: how often the
            controller regains control between ``sim.run(until=...)``
            calls.  Defaults to the live sampler's stock window so every
            closed window is seen at most one step late.
        cooldown: Minimum simulated seconds between two migrations — the
            post-action hysteresis that lets the detector's windows see
            the effect of a move before another is considered.
        budget: Maximum number of migrations per session.  Restart-based
            migration replays streams from their sources, so the budget
            defaults low.
        improvement_factor: A move happens only when the calibrated
            predicted bandwidth of the best candidate placement exceeds
            the current placement's by this factor (> 1).
        verify: Verification mode handed to
            :meth:`~repro.coordinator.deployer.Deployer.migrate` —
            ``"warn"`` (default) re-verifies every migration through the
            static analyzer before it acts, ``"strict"`` also fails on
            warnings.
        min_factor / max_factor: Clamp on the measured/predicted
            calibration factors, so one degenerate window cannot zero or
            explode the cost model.
    """

    check_interval: float = 0.002
    cooldown: float = 0.004
    budget: int = 2
    improvement_factor: float = 1.10
    verify: Optional[str] = "warn"
    min_factor: float = 0.05
    max_factor: float = 20.0

    def __post_init__(self):
        if self.check_interval <= 0.0:
            raise QueryExecutionError(
                f"check_interval must be > 0, got {self.check_interval!r}"
            )
        if self.cooldown < 0.0:
            raise QueryExecutionError(
                f"cooldown must be >= 0, got {self.cooldown!r}"
            )
        if self.budget < 0:
            raise QueryExecutionError(
                f"budget must be >= 0, got {self.budget!r}"
            )
        if self.improvement_factor <= 1.0:
            raise QueryExecutionError(
                "improvement_factor must be > 1 (a migration must predict a "
                f"strict improvement), got {self.improvement_factor!r}"
            )
        if self.verify not in (None, "warn", "strict"):
            raise QueryExecutionError(
                f"verify mode must be None, 'warn' or 'strict', "
                f"not {self.verify!r}"
            )
        if not 0.0 < self.min_factor <= self.max_factor:
            raise QueryExecutionError(
                f"need 0 < min_factor <= max_factor, got "
                f"{self.min_factor!r}/{self.max_factor!r}"
            )


def _is_running(deployment: Deployment) -> bool:
    """True while a started deployment's driver has not completed."""
    process = deployment._process
    return (
        process is not None
        and not process.triggered
        and not deployment.torn_down
    )


class AdaptiveController:
    """Drives one adaptive :class:`~repro.core.multiquery.MultiQuerySession`.

    Owned by :meth:`MultiQuerySession.run` when the session was created
    with ``adaptive="on"`` (or an explicit :class:`AdaptiveConfig`); not
    constructed directly in normal use.
    """

    def __init__(self, session: "MultiQuerySession",
                 config: Optional[AdaptiveConfig] = None):
        self.session = session
        self.config = config or AdaptiveConfig()
        self.migrations: List[MigrationRecord] = []
        self._per_label: Dict[str, List[MigrationRecord]] = {}
        self._generation: Dict[str, int] = {}
        self._last_migration: Optional[float] = None
        #: subject -> the alert that made it unhealthy; insertion-ordered,
        #: pruned when the detector reports the subject recovered.
        self._unhealthy: Dict[str, HealthEvent] = {}

    # ------------------------------------------------------------------
    # Observe: detector subscription
    # ------------------------------------------------------------------
    def _on_health(self, event: HealthEvent) -> None:
        if event.kind in _ALERT_KINDS:
            self._unhealthy[event.subject] = event
        elif event.kind == "recovered":
            self._unhealthy.pop(event.subject, None)

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def run(self) -> "MultiQueryResult":
        """Start every query, then step the simulator, reacting between steps.

        The loop advances the shared simulator ``check_interval`` at a
        time (jumping ahead when the next event is farther out, so idle
        tails cost no iterations) and evaluates a migration whenever the
        detector currently reports an unhealthy subject.  It exits when
        the event queue drains — exactly the condition under which the
        classic single ``sim.run()`` returns.
        """
        from repro.core.multiquery import MultiQueryResult, QueryOutcome

        session = self.session
        env = session.env
        live = env.obs.live
        if not live.enabled:
            raise QueryExecutionError(
                "adaptive mode needs a live-instrumented environment: build "
                "it with Instrumentation(live=LiveSampler(...)) so windows "
                "and health events exist to react to"
            )
        sim = env.sim
        interval = self.config.check_interval
        for entry in session._entries:
            entry.deployment.start(stop_after=entry.stop_after)
        t0 = sim.now
        detector = live.detector
        detector.add_listener(self._on_health, owner="adaptive-controller")
        try:
            while True:
                upcoming = sim.peek()
                if upcoming == float("inf"):
                    break
                sim.run(until=max(sim.now + interval, upcoming))
                if self._unhealthy:
                    self._maybe_migrate()
        finally:
            detector.remove_listener(self._on_health)

        outcomes: List[QueryOutcome] = []
        for entry in session._entries:
            report = entry.deployment.finish()
            assert entry.deployment.start_time is not None
            total = entry.deployment.start_time + report.duration - t0
            outcomes.append(QueryOutcome(
                label=entry.label,
                report=report,
                payload_bytes=entry.payload_bytes,
                total_duration=total,
                migrations=list(self._per_label.get(entry.label, [])),
            ))
        return MultiQueryResult(
            outcomes=outcomes, live=live, migrations=list(self.migrations),
        )

    # ------------------------------------------------------------------
    # Decide: calibrated incremental re-placement
    # ------------------------------------------------------------------
    def _calibration(self) -> Optional[Dict[str, float]]:
        """Measured/predicted factors per bound family, from the last window.

        For each live query, the binding analytic bound (the family that
        produces the current placement's minimum) is compared against the
        measured delivery rate into that query's BlueGene stream processes
        over the last closed live window.  Factors are averaged per family
        and clamped, so the optimizer scores candidates against the
        environment as *measured*, not just as modelled.
        """
        session = self.session
        windows = session.env.obs.live.windows
        if not windows:
            return None
        window = windows[-1]
        span = window.span
        if span <= 0.0:
            return None
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for entry in session._entries:
            deployment = entry.deployment
            if not _is_running(deployment):
                continue
            placer = CostBasedPlacer(session.env, deployment.settings)
            graph = deployment.graph
            current = {
                sp_id: deployment.rps[sp_id].node.index for sp_id in graph.sps
            }
            bounds = placer.predicted_bounds(graph, current)
            if not bounds:
                continue
            family = min(bounds, key=lambda name: (bounds[name], name))
            predicted = bounds[family]
            if not 0.0 < predicted < float("inf"):
                continue
            measured = 0.0
            for key, nbytes in window.sp_bytes.items():
                prefix, _, sp_id = key.partition("/")
                if prefix != entry.label:
                    continue
                sp = graph.sps.get(sp_id)
                if sp is not None and sp.cluster == BLUEGENE:
                    measured += nbytes
            rate = measured / span
            if rate <= 0.0:
                continue
            sums[family] = sums.get(family, 0.0) + rate / predicted
            counts[family] = counts.get(family, 0) + 1
        if not sums:
            return None
        config = self.config
        return {
            family: min(
                max(sums[family] / counts[family], config.min_factor),
                config.max_factor,
            )
            for family in sorted(sums)
        }

    def _best_move(
        self, measured: Optional[Dict[str, float]]
    ) -> Optional[Tuple[float, object, str, int]]:
        """The highest-gain single-SP move across every live query.

        Returns ``(gain, entry, sp_id, target_node_index)`` or ``None``.
        Deterministic: entries in submission order, sp ids sorted, and a
        later candidate replaces the incumbent only on strict improvement.
        """
        session = self.session
        best: Optional[Tuple[float, object, str, int]] = None
        for entry in session._entries:
            deployment = entry.deployment
            if not _is_running(deployment):
                continue
            placer = CostBasedPlacer(session.env, deployment.settings)
            graph = deployment.graph
            current = {
                sp_id: deployment.rps[sp_id].node.index for sp_id in graph.sps
            }
            current_score = placer.predicted_bandwidth(graph, current, measured)
            if not 0.0 < current_score < float("inf"):
                continue
            for sp_id in sorted(graph.sps):
                if graph.sps[sp_id].cluster != BLUEGENE:
                    continue
                try:
                    target, score = placer.replace_one(
                        graph, sp_id, current, measured
                    )
                except AllocationError:
                    continue
                gain = score / current_score
                if best is None or gain > best[0]:
                    best = (gain, entry, sp_id, target)
        return best

    # ------------------------------------------------------------------
    # Act: the migration
    # ------------------------------------------------------------------
    def _maybe_migrate(self) -> None:
        session = self.session
        config = self.config
        sim = session.env.sim
        if len(self.migrations) >= config.budget:
            return
        if (
            self._last_migration is not None
            and sim.now - self._last_migration < config.cooldown
        ):
            return
        best = self._best_move(self._calibration())
        if best is None or best[0] < config.improvement_factor:
            return
        _, entry, sp_id, target = best
        generation = self._generation.get(entry.label, 0) + 1
        prefix = f"{entry.label}+g{generation}/"
        replacement, record = session.deployer.migrate(
            entry.deployment, entry.plan, sp_id, target,
            rp_prefix=prefix, verify=config.verify,
        )
        self._generation[entry.label] = generation
        entry.deployment = replacement
        session._labels[entry.label] = replacement
        replacement.start(stop_after=entry.stop_after)
        self.migrations.append(record)
        self._per_label.setdefault(entry.label, []).append(record)
        self._last_migration = sim.now
