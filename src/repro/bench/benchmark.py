"""Power and throughput benchmark modes over the numbered query streams.

The TPC-H-style driver half of the harness, on top of
:mod:`repro.bench.query_stream`:

* **power mode** — one stream (stream 0) runs the deck serially, each
  query alone on a freshly seeded environment; the figure of merit is
  end-to-end latency per query plus their geometric mean.
* **throughput mode** — N numbered streams run the deck concurrently:
  round r deploys every stream's r-th deck query into one
  :class:`~repro.core.multiquery.MultiQuerySession`, so the streams
  contend for the ingress links the paper measures.  Per-stream bandwidth
  is paired with a solo baseline (same plan, same seed, fresh
  environment) into an interference ratio.
* **fault mode** — throughput streams plus a deterministic
  :class:`~repro.bench.faults.FaultSchedule`; repeats fan out over
  :meth:`repro.core.parallel.SweepExecutor.map` and the recovery metrics
  (recovery time, bandwidth dip) land next to the bandwidth ones.

Every mode returns a :class:`BenchReport` whose ``metrics`` mapping obeys
the BENCH v2 naming convention (:func:`repro.core.bench.higher_is_better`
reads the direction off the suffix), so ``repro bench --out/--baseline``
gates recovery regressions exactly like bandwidth regressions.

Every query's result is checked against its workload's reference value;
a harness that reports fast wrong answers is worse than no harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.faults import FaultOutcome, FaultTask, run_fault_task
from repro.bench.query_stream import (
    DEFAULT_SCALE,
    BenchQuery,
    StreamScale,
    build_query,
    query_order,
    registered,
)
from repro.coordinator.deployer import Deployer
from repro.core.parallel import SweepExecutor
from repro.core.multiquery import MultiQuerySession
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import Environment, EnvironmentConfig, shared_template
from repro.obs.instrument import Instrumentation
from repro.obs.health import ContinuousBottleneckDetector
from repro.obs.live import LiveSampler
from repro.obs.tracer import NULL_TRACER
from repro.scsql.plan import compile_plan
from repro.util.errors import MeasurementError
from repro.util.units import MEGA


@dataclass
class BenchReport:
    """One benchmark mode's outcome: gateable metrics plus a text report."""

    mode: str
    metrics: Dict[str, float]
    lines: List[str] = field(default_factory=list)

    series: Optional[Dict[str, dict]] = None
    """Windowed live-telemetry series per run segment (query / round),
    present when the mode ran with ``live_window`` set.  Embedded under
    the BENCH JSON's ``series`` key; the regression gate reads only the
    scalar ``metrics``."""

    def describe(self) -> str:
        return "\n".join(self.lines)


def _check_result(query: BenchQuery, result: List[object], context: str) -> None:
    if result != [query.expected_result]:
        raise MeasurementError(
            f"{context}: query {query.name} produced {result!r}, "
            f"expected [{query.expected_result!r}]"
        )


def _fresh_env(
    config: EnvironmentConfig,
    seed: int,
    live_window: Optional[float] = None,
    detector_kwargs: Optional[Dict[str, object]] = None,
) -> "tuple[Environment, Optional[LiveSampler]]":
    seeded = config.with_seed(seed)
    sampler: Optional[LiveSampler] = None
    obs = None
    if live_window is not None:
        detector = (
            ContinuousBottleneckDetector(**detector_kwargs)
            if detector_kwargs else None
        )
        sampler = LiveSampler(window=live_window, detector=detector)
        obs = Instrumentation(tracer=NULL_TRACER, live=sampler)
    env = shared_template(seeded).fork(seed=seeded.seed, obs=obs)
    return env, sampler


# ----------------------------------------------------------------------
# Power mode
# ----------------------------------------------------------------------
def run_power_mode(
    scale: StreamScale = DEFAULT_SCALE,
    seed: int = 0,
    env_config: EnvironmentConfig = EnvironmentConfig(),
    settings: Optional[ExecutionSettings] = None,
    live_window: Optional[float] = None,
    detector_kwargs: Optional[Dict[str, object]] = None,
) -> BenchReport:
    """Stream 0 runs the deck serially; per-query latency is the metric.

    ``live_window`` (simulated seconds) watches each deck query with a
    fresh :class:`~repro.obs.live.LiveSampler` and collects the windowed
    p50/p95/p99 series into ``report.series`` keyed by the query tag; the
    gated scalar metrics are unchanged by the instrumentation.
    ``detector_kwargs`` forwards hysteresis thresholds (``high``/``low``/
    ``up_windows``/``down_windows``/``stall_windows``) to each sampler's
    bottleneck detector.
    """
    metrics: Dict[str, float] = {}
    series: Dict[str, dict] = {}
    lines = [f"power mode: deck scale {scale.name!r}, seed {seed}"]
    latencies_ms: List[float] = []
    for kind in query_order(0, seed):
        query = build_query(kind, 0, scale, seed)
        plan = compile_plan(query.query, settings=settings)
        with registered([query]):
            env, sampler = _fresh_env(env_config, seed, live_window,
                                      detector_kwargs)
            report = Deployer(env).run(plan, settings=settings)
        _check_result(query, report.result, "power mode")
        if sampler is not None:
            sampler.finalize(env.sim.now)
            series[f"power[{kind}]"] = sampler.series_document()
        latency_ms = report.duration * 1e3
        mbps = query.payload_bytes * 8.0 / report.duration / MEGA
        metrics[f"power[{kind}]/latency_ms"] = latency_ms
        metrics[f"power[{kind}]/mbps"] = mbps
        latencies_ms.append(latency_ms)
        lines.append(f"  {kind:>12}: {latency_ms:8.3f} ms  {mbps:8.2f} Mbps")
    metrics["power/geomean_ms"] = math.exp(
        sum(math.log(value) for value in latencies_ms) / len(latencies_ms)
    )
    lines.append(f"  geometric mean latency: {metrics['power/geomean_ms']:.3f} ms")
    return BenchReport(mode="power", metrics=metrics, lines=lines,
                       series=series or None)


# ----------------------------------------------------------------------
# Throughput mode
# ----------------------------------------------------------------------
def run_throughput_mode(
    streams: int,
    scale: StreamScale = DEFAULT_SCALE,
    seed: int = 0,
    env_config: EnvironmentConfig = EnvironmentConfig(),
    settings: Optional[ExecutionSettings] = None,
    rounds: Optional[int] = None,
    with_solo: bool = True,
    live_window: Optional[float] = None,
    detector_kwargs: Optional[Dict[str, object]] = None,
) -> BenchReport:
    """N interleaved streams; per-stream bandwidth and interference ratios.

    Round r runs every stream's r-th deck query concurrently on one fresh
    environment (all rounds reuse the same seed, so placement is
    reproducible).  ``rounds`` truncates the deck (the ``--smoke`` path);
    ``with_solo=False`` skips the solo baselines and the interference
    ratios they feed.  ``live_window`` watches each concurrent round with
    a fresh :class:`~repro.obs.live.LiveSampler` (solo baselines stay
    uninstrumented) and collects windowed series into ``report.series``.
    """
    if streams < 1:
        raise MeasurementError(f"need at least one stream, got {streams}")
    orders = [query_order(k, seed) for k in range(streams)]
    deck_len = len(orders[0]) if rounds is None else min(rounds, len(orders[0]))
    tag = f"throughput[n={streams}]"
    lines = [
        f"throughput mode: {streams} streams x {deck_len} round(s), "
        f"deck scale {scale.name!r}, seed {seed}"
    ]
    payload_bits: Dict[int, float] = {k: 0.0 for k in range(streams)}
    concurrent_s: Dict[int, float] = {k: 0.0 for k in range(streams)}
    ratios: Dict[int, List[float]] = {k: [] for k in range(streams)}
    series: Dict[str, dict] = {}
    for round_no in range(deck_len):
        queries = [
            build_query(orders[k][round_no], k, scale, seed)
            for k in range(streams)
        ]
        plans = [compile_plan(q.query, settings=settings) for q in queries]
        with registered(queries):
            env, sampler = _fresh_env(env_config, seed, live_window,
                                      detector_kwargs)
            session = MultiQuerySession(env, settings, verify="warn")
            for query, plan in zip(queries, plans):
                session.submit(plan, query.payload_bytes, label=f"s{query.stream_id}")
            result = session.run()
            if sampler is not None:
                sampler.finalize(env.sim.now)
                series[f"{tag}/round{round_no}"] = sampler.series_document()
            solo_mbps: Dict[int, float] = {}
            if with_solo:
                for query, plan in zip(queries, plans):
                    solo_env, _ = _fresh_env(env_config, seed)
                    solo_report = Deployer(solo_env).run(plan, settings=settings)
                    _check_result(query, solo_report.result, "throughput solo")
                    solo_mbps[query.stream_id] = (
                        query.payload_bytes * 8.0 / solo_report.duration / MEGA
                    )
        for query in queries:
            outcome = result[f"s{query.stream_id}"]
            _check_result(query, outcome.report.result, "throughput mode")
            payload_bits[query.stream_id] += query.payload_bytes * 8.0
            concurrent_s[query.stream_id] += outcome.report.duration
            note = ""
            if query.stream_id in solo_mbps:
                ratios[query.stream_id].append(outcome.mbps / solo_mbps[query.stream_id])
                note = (
                    f"  solo {solo_mbps[query.stream_id]:8.2f} Mbps"
                    f"  ratio {ratios[query.stream_id][-1]:.2f}"
                )
            lines.append(
                f"  round {round_no} s{query.stream_id} "
                f"{query.kind:>12}: {outcome.mbps:8.2f} Mbps{note}"
            )
    metrics: Dict[str, float] = {}
    for k in range(streams):
        metrics[f"{tag}[s{k}]/mbps"] = payload_bits[k] / concurrent_s[k] / MEGA
        if ratios[k]:
            metrics[f"{tag}[s{k}]/interference"] = sum(ratios[k]) / len(ratios[k])
    metrics[f"{tag}/aggregate_mbps"] = sum(
        metrics[f"{tag}[s{k}]/mbps"] for k in range(streams)
    )
    for k in range(streams):
        ratio = metrics.get(f"{tag}[s{k}]/interference")
        lines.append(
            f"  s{k}: {metrics[f'{tag}[s{k}]/mbps']:8.2f} Mbps"
            + (f"  interference {ratio:.2f}" if ratio is not None else "")
        )
    lines.append(f"  aggregate: {metrics[f'{tag}/aggregate_mbps']:.2f} Mbps")
    return BenchReport(mode="throughput", metrics=metrics, lines=lines,
                       series=series or None)


# ----------------------------------------------------------------------
# Fault mode
# ----------------------------------------------------------------------
def run_fault_benchmark(
    scenario: str,
    streams: int,
    scale: StreamScale = DEFAULT_SCALE,
    seed: int = 0,
    env_config: EnvironmentConfig = EnvironmentConfig(),
    settings: Optional[ExecutionSettings] = None,
    repeats: int = 1,
    jobs: int = 1,
    at_fraction: float = 0.5,
) -> BenchReport:
    """Concurrent streams with a mid-run failure; recovery is the metric.

    Repeat i runs with seed ``seed + i`` (fresh environments, fresh victim
    selection); metrics are means over the repeats.  ``jobs > 1`` fans the
    repeats over worker processes with bit-identical results.
    """
    tasks = [
        FaultTask(
            seed=seed + i,
            streams=streams,
            scenario=scenario,
            scale=scale,
            at_fraction=at_fraction,
            settings=settings,
            env_config=env_config,
        )
        for i in range(repeats)
    ]
    outcomes: List[FaultOutcome] = SweepExecutor(jobs).map(run_fault_task, tasks)
    for outcome in outcomes:
        if not outcome.results_ok:
            raise MeasurementError(
                f"fault benchmark (seed {outcome.seed}): a stream's final "
                "result does not match its workload reference"
            )
    tag = f"fault[{scenario},n={streams}]"
    mean = lambda values: sum(values) / len(values)
    metrics: Dict[str, float] = {
        f"{tag}/recovery_s": mean([o.recovery_s for o in outcomes]),
        f"{tag}/retained_ratio": mean([o.bandwidth_retained for o in outcomes]),
        f"{tag}/makespan_ms": mean([o.faulted_makespan for o in outcomes]) * 1e3,
        f"{tag}/aggregate_mbps": mean([o.aggregate_mbps for o in outcomes]),
    }
    for k in range(streams):
        metrics[f"{tag}[s{k}]/mbps"] = mean(
            [o.per_stream_mbps[f"s{k}"] for o in outcomes]
        )
    lines = [
        f"fault mode: scenario {scenario!r}, {streams} streams, "
        f"{repeats} repeat(s), deck scale {scale.name!r}, seed {seed}"
    ]
    for outcome in outcomes:
        lines.append(
            f"  seed {outcome.seed}: fault at {outcome.fault_time * 1e3:.3f} ms"
            + (
                f", failed {', '.join(outcome.failed_nodes)}"
                if outcome.failed_nodes
                else ""
            )
            + (
                f", degraded {', '.join(outcome.degraded)}"
                if outcome.degraded
                else ""
            )
            + f", replanned {len(outcome.replacements)} stream(s)"
        )
    for k in range(streams):
        lines.append(f"  s{k}: {metrics[f'{tag}[s{k}]/mbps']:8.2f} Mbps")
    lines.append(f"  aggregate:      {metrics[f'{tag}/aggregate_mbps']:.2f} Mbps")
    lines.append(f"  recovery time:  {metrics[f'{tag}/recovery_s'] * 1e3:.3f} ms")
    lines.append(
        f"  bandwidth dip:  {100.0 * (1.0 - metrics[f'{tag}/retained_ratio']):.1f}% "
        f"(retained ratio {metrics[f'{tag}/retained_ratio']:.3f})"
    )
    lines.append(f"  makespan:       {metrics[f'{tag}/makespan_ms']:.3f} ms")
    return BenchReport(mode="fault", metrics=metrics, lines=lines)
