"""Numbered benchmark query streams over the repro workloads.

The TPC-H-style half of the harness: a fixed *deck* of communication-heavy
SCSQL queries — one per workload family (:mod:`repro.workloads.linear_road`,
:mod:`~repro.workloads.signals`, :mod:`~repro.workloads.corpus`) — and
numbered *query streams* that run the deck in a seeded per-stream
permutation, exactly like TPC-H throughput streams run the 22 queries in
stream-numbered orders.

Every deck query pushes its workload's data from the back-end Linux
cluster into the BlueGene over the Ethernet ingress (NIC -> switch uplink
-> I/O-node proxy -> tree network), so concurrent streams contend for the
shared links the paper measures:

* ``linear-road`` — per-segment speed streams into BlueGene tumbling-window
  congestion detectors (the paper's future-work benchmark, section 5);
* ``signals`` — antenna signal arrays into a BlueGene FFT process;
* ``grep`` — the paper's distributed-grep mapreduce, with the reduce
  (count) moved onto a BlueGene node so the matched lines cross the
  ingress.

:func:`build_query` is a pure function of ``(kind, stream_id, scale,
seed)`` — workers rebuild queries from those picklable coordinates, which
is what keeps the fault benchmark's ``--jobs N`` fan-out bit-identical to
a serial run.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.engine.objects import size_of
from repro.scsql.session import SCSQSession
from repro.util.errors import QueryExecutionError
from repro.workloads import corpus, linear_road, signals
from repro.workloads.linear_road import CONGESTION_SPEED

#: Deck order of stream 0 (the power-mode stream): one query per workload.
QUERY_KINDS: Tuple[str, ...] = ("linear-road", "signals", "grep")


@dataclass(frozen=True)
class StreamScale:
    """Workload sizes of one deck configuration (picklable, frozen).

    Two presets ship: :data:`DEFAULT_SCALE` for real measurements and
    :data:`SMOKE_SCALE` for CI smoke runs.
    """

    name: str
    lr_vehicles: int
    lr_segments: int
    lr_ticks: int
    lr_window: int
    sig_count: int
    sig_points: int
    grep_files: int


DEFAULT_SCALE = StreamScale(
    name="default",
    lr_vehicles=24, lr_segments=4, lr_ticks=120, lr_window=20,
    sig_count=8, sig_points=1024,
    grep_files=12,
)

SMOKE_SCALE = StreamScale(
    name="smoke",
    lr_vehicles=8, lr_segments=2, lr_ticks=40, lr_window=10,
    sig_count=3, sig_points=256,
    grep_files=4,
)


@dataclass
class BenchQuery:
    """One deck query instantiated for one stream.

    Attributes:
        kind: Deck family (:data:`QUERY_KINDS` member).
        stream_id: The numbered query stream this instance belongs to;
            baked into source names and file ranges so concurrent streams
            never share data.
        query: The SCSQL text.
        payload_bytes: Exact marshaled bytes the query streams over the
            be->bg ingress (computed with the engine's own
            :func:`~repro.engine.objects.size_of` model).
        sources: External source name -> re-iterable factory, to register
            before deploying (empty for source-less queries).
        expected_result: The scalar the query's root count must produce
            (reference-computed from the workload), for correctness
            assertions on harness runs.
    """

    kind: str
    stream_id: int
    query: str
    payload_bytes: int
    sources: Dict[str, Callable[[], Iterator[Any]]]
    expected_result: int = 0

    @property
    def name(self) -> str:
        return f"{self.kind}:s{self.stream_id}"


def query_order(stream_id: int, seed: int = 0) -> List[str]:
    """The deck order of numbered stream ``stream_id`` (TPC-H style).

    Stream 0 runs the canonical :data:`QUERY_KINDS` order; every other
    stream runs a deterministic permutation drawn from ``(seed,
    stream_id)`` and rotated by its stream number, so interleaved
    throughput streams are guaranteed to mix query kinds in every round.
    """
    if stream_id < 0:
        raise QueryExecutionError(f"stream id must be >= 0, got {stream_id}")
    order = list(QUERY_KINDS)
    if stream_id:
        random.Random(f"deck:{seed}:{stream_id}").shuffle(order)
        pivot = stream_id % len(order)
        order = order[pivot:] + order[:pivot]
    return order


def _workload_seed(seed: int, stream_id: int) -> int:
    """Per-stream data seed: distinct streams stream distinct data."""
    return seed + 97 * stream_id


def _linear_road_query(stream_id: int, scale: StreamScale, seed: int) -> BenchQuery:
    """Per-segment speeds cross the ingress into BG congestion detectors."""
    wseed = _workload_seed(seed, stream_id)
    accident = linear_road.Accident(
        segment=stream_id % scale.lr_segments,
        start_tick=scale.lr_ticks // 4,
        end_tick=3 * scale.lr_ticks // 4,
    )
    reports = linear_road.position_reports(
        scale.lr_vehicles, scale.lr_segments, scale.lr_ticks,
        seed=wseed, accident=accident,
    )
    partitions = linear_road.partition_by_segment(reports, scale.lr_segments)
    sources: Dict[str, Callable[[], Iterator[Any]]] = {}
    payload = 0
    expected = 0
    for segment, rows in partitions.items():
        speeds = linear_road.segment_speeds(rows)
        payload += sum(size_of(speed) for speed in speeds)
        expected += linear_road.expected_congested_windows(speeds, scale.lr_window)
        sources[f"bench-lr-s{stream_id}-seg{segment}"] = (
            lambda data=tuple(speeds): iter(data)
        )
    n = scale.lr_segments
    decls = ", ".join(
        [f"sp s{i}" for i in range(n)] + [f"sp d{i}" for i in range(n)] + ["sp c"]
    )
    conjuncts = [
        "c=sp(count(merge({" + ", ".join(f"d{i}" for i in range(n)) + "})), 'bg')"
    ]
    for i in range(n):
        conjuncts.append(
            f"d{i}=sp(below(winagg(extract(s{i}), 'avg', {scale.lr_window}, "
            f"{scale.lr_window}), {CONGESTION_SPEED}), 'bg', psetrr())"
        )
        conjuncts.append(
            f"s{i}=sp(receiver('bench-lr-s{stream_id}-seg{i}'), 'be', urr('be'))"
        )
    query = (
        f"select extract(c) from {decls} where " + " and ".join(conjuncts) + ";"
    )
    return BenchQuery(
        kind="linear-road",
        stream_id=stream_id,
        query=query,
        payload_bytes=payload,
        sources=sources,
        expected_result=expected,
    )


def _signals_query(stream_id: int, scale: StreamScale, seed: int) -> BenchQuery:
    """Signal arrays cross the ingress into a BlueGene FFT process."""
    wseed = _workload_seed(seed, stream_id)
    name = f"bench-sig-s{stream_id}"
    payload = sum(
        size_of(array)
        for array in signals.signal_stream(
            scale.sig_count, n_points=scale.sig_points, seed=wseed
        )
    )
    query = (
        "select extract(c) from sp s, sp f, sp c "
        "where c=sp(count(extract(f)), 'bg') "
        "and f=sp(fft(extract(s)), 'bg', psetrr()) "
        f"and s=sp(receiver('{name}'), 'be', urr('be'));"
    )
    return BenchQuery(
        kind="signals",
        stream_id=stream_id,
        query=query,
        payload_bytes=payload,
        sources={
            name: signals.make_signal_source(
                scale.sig_count, n_points=scale.sig_points, seed=wseed
            )
        },
        expected_result=scale.sig_count,
    )


def _grep_query(stream_id: int, scale: StreamScale, seed: int) -> BenchQuery:
    """Distributed grep whose matched lines cross the ingress to a BG count.

    Each stream greps its own slice of the corpus file table; ``seed``
    does not enter (the corpus is keyed by file name), but the payload is
    still stream-specific through the file range.
    """
    del seed  # corpus content is a pure function of the file names
    lo = stream_id * scale.grep_files + 1
    hi = (stream_id + 1) * scale.grep_files
    # The engine's grep operator reads corpus files at their default
    # length, so the payload model must do the same.
    payload = 0
    for i in range(lo, hi + 1):
        for line in corpus.read_file(corpus.filename(i)):
            if corpus.MARKER in line:
                payload += size_of(line)
    query = (
        "select extract(c) from bag of sp g, sp c "
        "where c=sp(count(merge(g)), 'bg', psetrr()) "
        f"and g=spv((select grep('{corpus.MARKER}', filename(i)) "
        f"from integer i where i in iota({lo},{hi})), 'be', urr('be'));"
    )
    return BenchQuery(
        kind="grep",
        stream_id=stream_id,
        query=query,
        payload_bytes=payload,
        sources={},
        expected_result=grep_line_count(scale),
    )


_BUILDERS: Dict[str, Callable[[int, StreamScale, int], BenchQuery]] = {
    "linear-road": _linear_road_query,
    "signals": _signals_query,
    "grep": _grep_query,
}


def build_query(
    kind: str, stream_id: int, scale: StreamScale, seed: int = 0
) -> BenchQuery:
    """Instantiate one deck query for one numbered stream.

    Pure and deterministic: the same ``(kind, stream_id, scale, seed)``
    always yields the same SCSQL text, payload, and source data — in any
    process.
    """
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise QueryExecutionError(
            f"unknown bench query kind {kind!r}; deck has {QUERY_KINDS}"
        ) from None
    if stream_id < 0:
        raise QueryExecutionError(f"stream id must be >= 0, got {stream_id}")
    return builder(stream_id, scale, seed)


def grep_line_count(scale: StreamScale) -> int:
    """Reference matched-line count of one grep deck query (any stream)."""
    return scale.grep_files * corpus.expected_marker_count()


@contextmanager
def registered(queries: Iterable[BenchQuery]) -> Iterator[None]:
    """Register every query's external sources for the enclosed block.

    Factories are re-iterable, so a query may be deployed several times
    (solo baseline, concurrent run, post-failure replacement) inside one
    ``with`` block.
    """
    names: List[str] = []
    try:
        for query in queries:
            for name, factory in query.sources.items():
                SCSQSession.register_source(name, factory)
                names.append(name)
        yield
    finally:
        for name in names:
            SCSQSession.unregister_source(name)
