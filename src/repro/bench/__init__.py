"""Numbered-query-stream benchmark harness with fault injection.

TPC-H-style power/throughput modes over the repro workloads
(:mod:`repro.bench.query_stream`, :mod:`repro.bench.benchmark`) and a
deterministic mid-run fault-injection layer with recovery metrics
(:mod:`repro.bench.faults`).  ``python -m repro bench --mode ...`` is the
CLI front end; the metric mappings gate through the BENCH v2 machinery in
:mod:`repro.core.bench`.
"""

from repro.bench.benchmark import (
    BenchReport,
    run_fault_benchmark,
    run_power_mode,
    run_throughput_mode,
)
from repro.bench.faults import (
    DEFAULT_DEGRADE_FACTOR,
    SCENARIOS,
    FaultEvent,
    FaultOutcome,
    FaultSchedule,
    FaultTask,
    FaultedRunResult,
    run_fault_task,
    run_faulted_session,
)
from repro.bench.query_stream import (
    DEFAULT_SCALE,
    QUERY_KINDS,
    SMOKE_SCALE,
    BenchQuery,
    StreamScale,
    build_query,
    grep_line_count,
    query_order,
    registered,
)

__all__ = [
    "BenchQuery",
    "BenchReport",
    "DEFAULT_DEGRADE_FACTOR",
    "DEFAULT_SCALE",
    "FaultEvent",
    "FaultOutcome",
    "FaultSchedule",
    "FaultTask",
    "FaultedRunResult",
    "QUERY_KINDS",
    "SCENARIOS",
    "SMOKE_SCALE",
    "StreamScale",
    "build_query",
    "grep_line_count",
    "query_order",
    "registered",
    "run_fault_benchmark",
    "run_fault_task",
    "run_faulted_session",
    "run_power_mode",
    "run_throughput_mode",
]
