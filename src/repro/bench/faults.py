"""Deterministic fault injection for the benchmark harness.

Mid-run failures over concurrent numbered query streams: a seed-driven
:class:`FaultSchedule` kills a BlueGene compute node (or a whole pset with
its I/O node) or degrades a torus link / the Ethernet switch uplink at a
chosen simulated time.  :func:`run_faulted_session` deploys every stream,
drives the shared simulator up to each fault instant, applies the failure,
and exercises the *existing* recovery machinery end to end:

* :meth:`~repro.coordinator.deployer.Deployment.teardown` stops the
  victim's running processes and returns their node slots;
* the hardware effect lands (``Node.fail()``,
  :meth:`~repro.net.torus.TorusNetwork.degrade_link`,
  :meth:`~repro.net.ethernet.EthernetFabric.degrade_uplink`);
* the victim is **replanned** through the deployer's
  :class:`~repro.coordinator.deployer.PlacementStrategy` interface and
  redeployed under a ``<label>+rN/`` prefix, re-verified by the static
  :class:`~repro.analysis.verifier.PlanVerifier` against the live
  environment (failed nodes are unavailable in the snapshot replay).

Recovery time and the bandwidth dip are read back from the
:class:`~repro.obs.flow.FlowRecorder`: recovery is the first delivery of a
replacement-stream flow after the fault; the dip compares the delivered
byte rate after the fault against the rate before it.

Everything is a pure function of ``(seed, streams, scenario, scale)``:
:class:`FaultTask` is a frozen picklable payload and
:func:`run_fault_task` the module-level worker, so
:meth:`repro.core.parallel.SweepExecutor.map` fans repeats out over
processes with bit-identical results to a serial run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.query_stream import (
    DEFAULT_SCALE,
    BenchQuery,
    StreamScale,
    build_query,
    query_order,
    registered,
)
from repro.coordinator.deployer import (
    Deployer,
    Deployment,
    ExecutionReport,
    PlacementStrategy,
)
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import (
    BLUEGENE,
    Environment,
    EnvironmentConfig,
    shared_template,
)
from repro.hardware.node import NodeKind
from repro.obs.flow import FlowRecord
from repro.obs.instrument import Instrumentation
from repro.obs.tracer import NULL_TRACER
from repro.scsql.plan import compile_plan
from repro.util.errors import QueryExecutionError
from repro.util.units import MEGA

#: Fault scenarios the schedule can inject.
SCENARIOS: Tuple[str, ...] = (
    "kill-node",
    "kill-io-node",
    "degrade-link",
    "degrade-uplink",
)

#: Repair events: undo an earlier degradation (nothing to replan).
RESTORE_SCENARIOS: Tuple[str, ...] = (
    "restore-link",
    "restore-uplink",
)

#: Benchmark-facing composite scenarios built from several events.
COMPOSITE_SCENARIOS: Tuple[str, ...] = (
    "correlated",
    "flapping",
)

#: Default slowdown factor of the degradation scenarios.
DEFAULT_DEGRADE_FACTOR = 8.0

#: Degrade/restore cycles of the transient-flapping composite.
FLAPPING_CYCLES = 3


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    Attributes:
        time: Simulated second at which the fault strikes.
        scenario: A :data:`SCENARIOS` member.
        target: Optional explicit hardware target — a compute-node index
            for ``kill-node``, a pset id for ``kill-io-node``.  ``None``
            (the default) lets the schedule's seeded RNG pick among the
            nodes that actually host running processes at fault time.
        factor: Slowdown multiplier of the degradation scenarios.
        replan: Whether victim streams are torn down and redeployed.
            ``False`` models a *transient* fault the session rides out in
            place (the flapping composite); :data:`RESTORE_SCENARIOS`
            events never replan regardless.
    """

    time: float
    scenario: str
    target: Optional[int] = None
    factor: float = DEFAULT_DEGRADE_FACTOR
    replan: bool = True

    def __post_init__(self):
        if self.scenario not in SCENARIOS + RESTORE_SCENARIOS:
            raise QueryExecutionError(
                f"unknown fault scenario {self.scenario!r}; "
                f"expected one of {SCENARIOS + RESTORE_SCENARIOS}"
            )
        if self.time < 0.0:
            raise QueryExecutionError(
                f"fault time must be >= 0, got {self.time}"
            )
        if self.factor < 1.0:
            raise QueryExecutionError(
                f"degrade factor must be >= 1, got {self.factor}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic, seed-driven sequence of failures.

    The seed drives *victim selection* (which occupied node dies, which
    stream gets replanned) — the schedule itself is explicit data, so the
    same ``(events, seed)`` pair injects bit-identical failures in any
    process, which is what lets repeats run under ``--jobs N``.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self):
        times = [event.time for event in self.events]
        if times != sorted(times):
            raise QueryExecutionError("fault events must be time-ordered")

    def with_seed(self, seed: int) -> "FaultSchedule":
        """This schedule with only the victim-selection seed replaced."""
        return replace(self, seed=seed)

    @staticmethod
    def single(
        scenario: str,
        at_time: float,
        seed: int = 0,
        target: Optional[int] = None,
        factor: float = DEFAULT_DEGRADE_FACTOR,
    ) -> "FaultSchedule":
        """The common one-failure schedule."""
        return FaultSchedule(
            events=(FaultEvent(at_time, scenario, target=target, factor=factor),),
            seed=seed,
        )

    @staticmethod
    def correlated(
        at_time: float,
        seed: int = 0,
        target: Optional[int] = None,
        factor: float = DEFAULT_DEGRADE_FACTOR,
    ) -> "FaultSchedule":
        """A correlated multi-fault: node death *and* uplink degradation.

        Both strike in the same instant — the realistic cascade where a
        rack event takes a compute node down and saturates the shared
        ingress at once.  The victim must replan around the dead node
        while every stream rides the slowed uplink.
        """
        return FaultSchedule(
            events=(
                FaultEvent(at_time, "kill-node", target=target),
                FaultEvent(at_time, "degrade-uplink", factor=factor),
            ),
            seed=seed,
        )

    @staticmethod
    def flapping(
        at_time: float,
        period: float,
        cycles: int = FLAPPING_CYCLES,
        seed: int = 0,
        factor: float = DEFAULT_DEGRADE_FACTOR,
    ) -> "FaultSchedule":
        """A transiently flapping uplink: degrade/restore every half period.

        No event replans — the streams ride each dip out in place, which
        is exactly what the health detector's hysteresis should absorb
        (``degraded`` on each dip, ``recovered`` after each restore,
        never a spurious replacement).
        """
        if period <= 0.0:
            raise QueryExecutionError(
                f"flapping period must be > 0, got {period}"
            )
        if cycles < 1:
            raise QueryExecutionError(
                f"flapping needs at least one cycle, got {cycles}"
            )
        events: List[FaultEvent] = []
        for cycle in range(cycles):
            start = at_time + cycle * period
            events.append(FaultEvent(
                start, "degrade-uplink", factor=factor, replan=False,
            ))
            events.append(FaultEvent(
                start + period / 2.0, "restore-uplink", replan=False,
            ))
        return FaultSchedule(events=tuple(events), seed=seed)


@dataclass
class StreamState:
    """The deployment history of one numbered stream inside a session."""

    label: str
    query: BenchQuery
    plan: object
    deployments: List[Deployment] = field(default_factory=list)

    @property
    def final(self) -> Deployment:
        return self.deployments[-1]


@dataclass
class FaultedRunResult:
    """Everything one (possibly faulted) concurrent run produced."""

    reports: Dict[str, ExecutionReport]
    """Stream label -> execution report of the stream's *final* deployment
    (the replacement, for streams that were killed and replanned)."""

    completions: Dict[str, float]
    """Stream label -> simulated second its final deployment delivered the
    last result (streams all start at time 0)."""

    makespan: float
    """Simulated second the last stream completed."""

    fault_time: Optional[float]
    """When the first fault struck (None for a healthy run)."""

    failed_nodes: List[str] = field(default_factory=list)
    """Node ids marked failed by the schedule."""

    degraded: List[str] = field(default_factory=list)
    """Human-readable descriptions of degraded links/uplinks."""

    restored: List[str] = field(default_factory=list)
    """Human-readable descriptions of repaired links/uplinks."""

    replacements: List[str] = field(default_factory=list)
    """RP prefixes of the replacement deployments, e.g. ``"s0+r1/"``."""

    flow_records: List[FlowRecord] = field(default_factory=list)
    """Completed flows of the run (empty without flow instrumentation)."""

    @property
    def recovery_s(self) -> float:
        """Seconds from the fault to the first replacement-flow delivery.

        Falls back to makespan minus fault time when no replacement flow
        completed (e.g. flow instrumentation off), and to 0.0 for healthy
        runs or faults that found nothing left to kill.
        """
        if self.fault_time is None:
            return 0.0
        if not self.replacements:
            return 0.0
        recovered = [
            record.delivered
            for record in self.flow_records
            if record.delivered is not None and "+r" in record.stream_id
        ]
        if not recovered:
            return self.makespan - self.fault_time
        return min(recovered) - self.fault_time

    @property
    def outage_rate_ratio(self) -> float:
        """Delivered byte rate through the outage, relative to before it.

        Compares the aggregate delivery rate over the *outage window*
        ``[fault, fault + recovery)`` — the victim is down, its
        replacement has not delivered yet — against the rate over the
        equal-length window ending at the fault.  1.0 means no dip;
        degenerate windows (healthy run, no pre-fault deliveries, zero
        recovery) report 1.0.
        """
        if self.fault_time is None or self.fault_time <= 0.0:
            return 1.0
        window = self.recovery_s
        if window <= 0.0:
            return 1.0
        lo = max(0.0, self.fault_time - window)
        pre_span = self.fault_time - lo
        pre = post = 0
        for record in self.flow_records:
            if record.delivered is None or record.eos:
                continue
            if lo < record.delivered <= self.fault_time:
                pre += record.nbytes
            elif self.fault_time < record.delivered < self.fault_time + window:
                post += record.nbytes
        if pre == 0:
            return 1.0
        return (post / window) / (pre / pre_span)


# ----------------------------------------------------------------------
# The injection loop
# ----------------------------------------------------------------------
def _is_running(deployment: Deployment) -> bool:
    """True while a started deployment's driver has not completed."""
    process = deployment._process
    return (
        process is not None
        and not process.triggered
        and not deployment.torn_down
    )


def _occupied_bg_nodes(states: Sequence[StreamState]) -> Dict[int, List[StreamState]]:
    """Compute-node index -> streams with a live RP there, deterministic."""
    occupied: Dict[int, List[StreamState]] = {}
    for state in states:
        deployment = state.final
        if not _is_running(deployment):
            continue
        for rp in deployment.rps.values():
            node = rp.node
            if node.cluster == BLUEGENE and node.kind is NodeKind.BG_COMPUTE:
                holders = occupied.setdefault(node.index, [])
                if state not in holders:
                    holders.append(state)
    return occupied


def run_faulted_session(
    env: Environment,
    queries: Sequence[BenchQuery],
    schedule: FaultSchedule = FaultSchedule(),
    settings: Optional[ExecutionSettings] = None,
    strategy: Optional[PlacementStrategy] = None,
    verify: Optional[str] = "warn",
) -> FaultedRunResult:
    """Run the queries concurrently on ``env``, injecting the schedule.

    Every query deploys under its own ``s<stream_id>/`` prefix and starts
    at simulated time 0 (external sources must already be registered — use
    :func:`repro.bench.query_stream.registered`).  The simulator then runs
    up to each fault instant in turn; the fault tears down its victims,
    damages the hardware, and redeploys each victim through ``strategy``
    (naive next-available selection by default) with static re-verification
    per ``verify``.  An empty schedule is simply a healthy concurrent run.
    """
    rng = random.Random(f"fault:{schedule.seed}")
    deployer = Deployer(env)
    states: List[StreamState] = []
    for bench_query in queries:
        label = f"s{bench_query.stream_id}"
        plan = compile_plan(bench_query.query, settings=settings)
        placed = deployer.place(plan, strategy, settings)
        deployment = deployer.deploy(placed, rp_prefix=f"{label}/", verify=verify)
        states.append(
            StreamState(label=label, query=bench_query, plan=plan,
                        deployments=[deployment])
        )
    for state in states:
        state.final.start()

    failed_nodes: List[str] = []
    degraded: List[str] = []
    restored: List[str] = []
    degraded_links: List[Tuple[int, int]] = []
    replacements: List[str] = []
    for event in schedule.events:
        env.sim.run(until=event.time)
        victims = _apply_event(
            env, event, states, rng, failed_nodes, degraded, restored,
            degraded_links,
        )
        if not event.replan:
            continue  # a transient: the streams ride it out in place
        for state in victims:
            deployer.teardown(state.final)
            placed = deployer.place(state.plan, strategy, settings)
            prefix = f"{state.label}+r{len(state.deployments)}/"
            replacement = deployer.deploy(placed, rp_prefix=prefix, verify=verify)
            state.deployments.append(replacement)
            replacement.start()
            replacements.append(prefix)
    env.sim.run()

    reports: Dict[str, ExecutionReport] = {}
    completions: Dict[str, float] = {}
    for state in states:
        deployment = state.final
        report = deployment.finish()
        reports[state.label] = report
        assert deployment.start_time is not None
        completions[state.label] = deployment.start_time + report.duration
    makespan = max(completions.values()) if completions else 0.0
    return FaultedRunResult(
        reports=reports,
        completions=completions,
        makespan=makespan,
        fault_time=schedule.events[0].time if schedule.events else None,
        failed_nodes=failed_nodes,
        degraded=degraded,
        restored=restored,
        replacements=replacements,
        flow_records=list(env.obs.flows.completed),
    )


def _notify_failure(env: Environment, subject: str, scope: str,
                    detail: str = "") -> None:
    """Forward a hardware failure to the live health detector, if any."""
    live = env.obs.live
    if live.enabled:
        live.on_failure(subject, scope, detail)


def _apply_event(
    env: Environment,
    event: FaultEvent,
    states: Sequence[StreamState],
    rng: random.Random,
    failed_nodes: List[str],
    degraded: List[str],
    restored: List[str],
    degraded_links: List[Tuple[int, int]],
) -> List[StreamState]:
    """Damage (or repair) the hardware; return the streams to replan."""
    if event.scenario == "restore-link":
        while degraded_links:
            a, b = degraded_links.pop()
            env.torus.restore_link(a, b)
            restored.append(f"torus {a}<->{b} restored")
        return []

    if event.scenario == "restore-uplink":
        env.fabric.restore_uplink()
        restored.append("eth uplink restored")
        return []

    occupied = _occupied_bg_nodes(states)
    if event.scenario == "kill-node":
        candidates = sorted(occupied)
        if event.target is not None:
            index = event.target
        elif candidates:
            index = rng.choice(candidates)
        else:
            return []  # nothing left running: the fault finds no victim
        node = env.bluegene.node(index)
        node.fail()
        failed_nodes.append(node.node_id)
        _notify_failure(env, node.node_id, "node", "killed by fault injection")
        return list(occupied.get(index, []))

    if event.scenario == "kill-io-node":
        if event.target is not None:
            pset_id = event.target
        else:
            candidates = sorted(occupied)
            if not candidates:
                return []
            pset_id = env.bluegene.pset_of(rng.choice(candidates))
        victims: List[StreamState] = []
        for node in env.bluegene.nodes_in_pset(pset_id):
            node.fail()
            failed_nodes.append(node.node_id)
            _notify_failure(env, node.node_id, "node",
                            f"pset {pset_id} killed by fault injection")
            for state in occupied.get(node.index, []):
                if state not in victims:
                    victims.append(state)
        io_node = env.bluegene.io_nodes[pset_id]
        io_node.fail()
        failed_nodes.append(io_node.node_id)
        _notify_failure(env, io_node.node_id, "pset",
                        f"I/O node of pset {pset_id} killed by fault injection")
        return victims

    if event.scenario == "degrade-link":
        candidates = sorted(occupied)
        if len(candidates) < 2:
            return []
        src, dst = rng.sample(candidates, 2)
        path = env.torus.routes.route(src, dst)
        for a, b in zip(path, path[1:]):
            env.torus.degrade_link(a, b, event.factor)
            degraded_links.append((a, b))
            degraded.append(f"torus {a}<->{b} x{event.factor:g}")
            _notify_failure(env, f"torus[{a}<->{b}]", "link",
                            f"degraded x{event.factor:g}")
        return list(occupied.get(dst, []))

    assert event.scenario == "degrade-uplink"
    env.fabric.degrade_uplink(event.factor)
    degraded.append(f"eth uplink x{event.factor:g}")
    _notify_failure(env, "eth-uplink", "link", f"degraded x{event.factor:g}")
    running = [state for state in states if _is_running(state.final)]
    if not running:
        return []
    return [rng.choice(running)]


# ----------------------------------------------------------------------
# Picklable repeat payloads for SweepExecutor.map
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultTask:
    """One fault-benchmark repeat, as a spawn-safe payload.

    The worker rebuilds everything — queries, schedule, environments —
    from these coordinates, so ``--jobs 1`` and ``--jobs N`` execute the
    same function on the same data and agree bit for bit.
    """

    seed: int
    streams: int
    scenario: str
    scale: StreamScale = DEFAULT_SCALE
    at_fraction: float = 0.5
    factor: float = DEFAULT_DEGRADE_FACTOR
    target: Optional[int] = None
    settings: Optional[ExecutionSettings] = None
    env_config: EnvironmentConfig = EnvironmentConfig()

    def __post_init__(self):
        if self.streams < 1:
            raise QueryExecutionError(
                f"need at least one stream, got {self.streams}"
            )
        if not 0.0 < self.at_fraction < 1.0:
            raise QueryExecutionError(
                f"at_fraction must be in (0, 1), got {self.at_fraction}"
            )
        if self.scenario not in SCENARIOS + COMPOSITE_SCENARIOS:
            raise QueryExecutionError(
                f"unknown fault scenario {self.scenario!r}; "
                f"expected one of {SCENARIOS + COMPOSITE_SCENARIOS}"
            )


@dataclass
class FaultOutcome:
    """What one :class:`FaultTask` measured (picklable)."""

    scenario: str
    seed: int
    streams: int
    fault_time: float
    healthy_makespan: float
    faulted_makespan: float
    recovery_s: float
    bandwidth_retained: float
    """Faulted/healthy aggregate-bandwidth ratio: the streams move the
    same payload either way, so this is ``healthy_makespan /
    faulted_makespan`` — 1.0 when the failure cost nothing."""

    per_stream_mbps: Dict[str, float]
    failed_nodes: List[str]
    degraded: List[str]
    replacements: List[str]
    results_ok: bool
    flow_records: List[FlowRecord] = field(default_factory=list)
    restored: List[str] = field(default_factory=list)

    @property
    def bandwidth_dip(self) -> float:
        """Fraction of fault-free aggregate bandwidth the failure cost."""
        return max(0.0, 1.0 - self.bandwidth_retained)

    @property
    def aggregate_mbps(self) -> float:
        return sum(self.per_stream_mbps.values())


def fault_queries(task: FaultTask) -> List[BenchQuery]:
    """The deck queries of a fault run: stream k runs its deck's opener."""
    return [
        build_query(query_order(k, task.seed)[0], k, task.scale, task.seed)
        for k in range(task.streams)
    ]


def run_fault_task(task: FaultTask) -> FaultOutcome:
    """Execute one fault-benchmark repeat in the current process.

    Runs the concurrent streams twice on identically seeded environments:
    once healthy to learn the fault-free makespan (the fault strikes at
    ``at_fraction`` of it), then with the schedule injected and flow
    instrumentation on.  Every final result is checked against the
    workload's reference value — a replanned stream must still produce the
    exact answer.
    """
    config = task.env_config.with_seed(task.seed)
    queries = fault_queries(task)
    with registered(queries):
        healthy_env = shared_template(config).fork(seed=config.seed)
        healthy = run_faulted_session(
            healthy_env, queries, FaultSchedule(), settings=task.settings
        )
        fault_time = task.at_fraction * healthy.makespan
        if task.scenario == "correlated":
            schedule = FaultSchedule.correlated(
                fault_time, seed=task.seed,
                target=task.target, factor=task.factor,
            )
        elif task.scenario == "flapping":
            # Spread the degrade/restore cycles over the remaining healthy
            # runtime — a pure function of the healthy makespan, so every
            # worker derives the identical schedule.
            period = (healthy.makespan - fault_time) / FLAPPING_CYCLES
            schedule = FaultSchedule.flapping(
                fault_time, period, seed=task.seed, factor=task.factor,
            )
        else:
            schedule = FaultSchedule.single(
                task.scenario, fault_time, seed=task.seed,
                target=task.target, factor=task.factor,
            )
        faulted_env = shared_template(config).fork(
            seed=config.seed, obs=Instrumentation(tracer=NULL_TRACER),
        )
        faulted = run_faulted_session(
            faulted_env, queries, schedule, settings=task.settings
        )
    results_ok = all(
        faulted.reports[f"s{query.stream_id}"].result == [query.expected_result]
        for query in queries
    )
    per_stream_mbps = {
        f"s{query.stream_id}": (
            query.payload_bytes * 8.0
            / faulted.completions[f"s{query.stream_id}"] / MEGA
        )
        for query in queries
    }
    return FaultOutcome(
        scenario=task.scenario,
        seed=task.seed,
        streams=task.streams,
        fault_time=fault_time,
        healthy_makespan=healthy.makespan,
        faulted_makespan=faulted.makespan,
        recovery_s=faulted.recovery_s,
        bandwidth_retained=(
            healthy.makespan / faulted.makespan if faulted.makespan > 0.0 else 1.0
        ),
        per_stream_mbps=per_stream_mbps,
        failed_nodes=faulted.failed_nodes,
        degraded=faulted.degraded,
        replacements=faulted.replacements,
        results_ok=results_ok,
        flow_records=faulted.flow_records,
        restored=faulted.restored,
    )
