"""Recursive-descent parser for SCSQL.

Grammar (the subset exercised by the paper plus user-defined functions)::

    statement   := select_query | create_function
    create_function
                := "create" "function" IDENT "(" [param ("," param)*] ")"
                   "->" IDENT "as" select_query
    param       := IDENT IDENT                      -- type name
    select_query:= "select" expr "from" decl ("," decl)*
                   ["where" condition ("and" condition)*]
    decl        := ["bag" "of"] IDENT IDENT         -- type name
    condition   := IDENT "=" expr | IDENT "in" expr
    expr        := literal | set_expr | nested_select | call_or_var
    call_or_var := IDENT ["(" [expr ("," expr)*] ")"]
    set_expr    := "{" expr ("," expr)* "}"
    nested_select := "(" select_query ")"

A trailing semicolon after a statement is accepted and ignored.
"""

from __future__ import annotations

from typing import List, Optional

from repro.scsql.ast import (
    CondKind,
    Condition,
    CreateFunction,
    Decl,
    Expr,
    FuncCall,
    Literal,
    Param,
    SelectQuery,
    SetExpr,
    Statement,
    Var,
)
from repro.scsql.lexer import Token, TokenKind, tokenize
from repro.util.errors import QueryParseError
from repro.util.source import Span

#: Types a from-clause may declare.  ``sp`` is the paper's stream-process
#: type; the rest are conventional scalar/stream types.
DECLARABLE_TYPES = frozenset(
    ["sp", "integer", "real", "string", "stream", "object", "charstring"]
)


def parse(text: str) -> Statement:
    """Parse one SCSQL statement.

    Raises:
        QueryParseError: On any syntax error, with source position.
    """
    return _Parser(tokenize(text)).parse_statement()


def parse_query(text: str) -> SelectQuery:
    """Parse a select query (rejecting ``create function``)."""
    statement = parse(text)
    if not isinstance(statement, SelectQuery):
        raise QueryParseError("expected a select query, got a function definition")
    return statement


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.END:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind is kind and (text is None or token.text == text)

    def _accept(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            token = self._current
            wanted = text or kind.value
            raise QueryParseError(
                f"expected {wanted!r}, found {str(token) or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        if self._check(TokenKind.KEYWORD, "create"):
            statement: Statement = self._create_function()
        else:
            statement = self._select_query()
        self._accept(TokenKind.SEMICOLON)
        end = self._current
        if end.kind is not TokenKind.END:
            raise QueryParseError(
                f"unexpected trailing input starting at {str(end)!r}", end.line, end.column
            )
        return statement

    def _create_function(self) -> CreateFunction:
        self._expect(TokenKind.KEYWORD, "create")
        self._expect(TokenKind.KEYWORD, "function")
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        params: List[Param] = []
        if not self._check(TokenKind.RPAREN):
            while True:
                type_name = self._expect(TokenKind.IDENT).text
                param_name = self._expect(TokenKind.IDENT).text
                params.append(Param(name=param_name, type_name=type_name))
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.ARROW)
        return_type = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.KEYWORD, "as")
        body = self._select_query()
        return CreateFunction(
            name=name, params=tuple(params), return_type=return_type, body=body
        )

    # ------------------------------------------------------------------
    # Select queries
    # ------------------------------------------------------------------
    def _select_query(self) -> SelectQuery:
        self._expect(TokenKind.KEYWORD, "select")
        select_expr = self._expr()
        self._expect(TokenKind.KEYWORD, "from")
        decls = [self._decl()]
        while self._accept(TokenKind.COMMA):
            decls.append(self._decl())
        conditions: List[Condition] = []
        if self._accept(TokenKind.KEYWORD, "where"):
            conditions.append(self._condition())
            while self._accept(TokenKind.KEYWORD, "and"):
                conditions.append(self._condition())
        return SelectQuery(
            select=select_expr, decls=tuple(decls), conditions=tuple(conditions)
        )

    def _decl(self) -> Decl:
        is_bag = False
        if self._accept(TokenKind.KEYWORD, "bag"):
            self._expect(TokenKind.KEYWORD, "of")
            is_bag = True
        type_token = self._expect(TokenKind.IDENT)
        if type_token.text not in DECLARABLE_TYPES:
            raise QueryParseError(
                f"unknown type {type_token.text!r} in from clause",
                type_token.line,
                type_token.column,
            )
        name = self._expect(TokenKind.IDENT).text
        return Decl(name=name, type_name=type_token.text, is_bag=is_bag)

    def _condition(self) -> Condition:
        var = self._expect(TokenKind.IDENT).text
        if self._accept(TokenKind.EQUALS):
            return Condition(kind=CondKind.EQ, var=var, expr=self._expr())
        if self._accept(TokenKind.KEYWORD, "in"):
            return Condition(kind=CondKind.IN, var=var, expr=self._expr())
        token = self._current
        raise QueryParseError(
            f"expected '=' or 'in' after {var!r}", token.line, token.column
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expr(self) -> Expr:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.text)
        if token.kind is TokenKind.LBRACE:
            return self._set_expr()
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._select_query()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._accept(TokenKind.LPAREN):
                args: List[Expr] = []
                if not self._check(TokenKind.RPAREN):
                    while True:
                        args.append(self._expr())
                        if not self._accept(TokenKind.COMMA):
                            break
                self._expect(TokenKind.RPAREN)
                return FuncCall(
                    name=token.text,
                    args=tuple(args),
                    span=Span(token.line, token.column),
                )
            return Var(name=token.text)
        raise QueryParseError(
            f"expected an expression, found {str(token) or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _set_expr(self) -> SetExpr:
        self._expect(TokenKind.LBRACE)
        items = [self._expr()]
        while self._accept(TokenKind.COMMA):
            items.append(self._expr())
        self._expect(TokenKind.RBRACE)
        return SetExpr(items=tuple(items))
