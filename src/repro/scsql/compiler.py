"""The SCSQL compiler: from parsed queries to deployable process graphs.

Compilation follows the paper's two-level semantics:

* **Setup level** — the ``where`` clause of a query is a set of
  definitions.  ``v = expr`` binds a declared variable; definitions are
  evaluated in dependency order (the paper writes them in any order, e.g.
  ``c`` is defined after it is referenced in Query 1).  Calls to ``sp`` and
  ``spv`` are *special forms*: their subquery argument is compiled — not
  executed — into a plan, a stream process is registered in the query
  graph, and a handle is returned.
* **Stream level** — the select expression of every (sub)query is compiled
  into a :class:`~repro.engine.sqep.OpSpec` plan; ``extract(p)`` and
  ``merge(bag)`` become subscription leaves connecting plans across stream
  processes.

The compiler is deliberately permissive about *which* cluster things run in
and strict about variable binding, arity, and types of builtin calls, so a
malformed query fails at compile time with a :class:`QuerySemanticError`
rather than deadlocking the simulation.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.coordinator.allocation import (
    AllocationDirective,
    AllocationSequence,
    ExplicitNodesSpec,
    InPsetSpec,
    PsetRoundRobinSpec,
    UrrSpec,
)
from repro.coordinator.graph import QueryGraph, SPDef
from repro.engine.sqep import OpSpec, plan_input, plan_op
from repro.hardware.environment import DEFAULT_CLUSTERS
from repro.scsql.ast import (
    CondKind,
    Condition,
    CreateFunction,
    Expr,
    FuncCall,
    Literal,
    SelectQuery,
    SetExpr,
    Var,
)
from repro.scsql.handles import SPHandle, SPVHandle
from repro.scsql.scopes import Scope
from repro.util.errors import QuerySemanticError
from repro.workloads import corpus

#: Stream functions compiled 1:1 into unary plan operators.
_UNARY_STREAM_OPS = frozenset(
    ["count", "sum", "avg", "maxagg", "minagg", "fft", "odd", "even", "radixcombine", "relay"]
)


class FunctionDef:
    """A user-defined query function (``create function ... as select ...``)."""

    def __init__(self, definition: CreateFunction):
        self.definition = definition

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def arity(self) -> int:
        return len(self.definition.params)


class QueryCompiler:
    """Compiles one statement into an environment-independent query graph.

    Compilation is *setup-time only*: no live
    :class:`~repro.hardware.environment.Environment` is needed.  Cluster
    names are validated against ``clusters`` (anything with a
    ``cluster_names()`` method — e.g. an Environment — or a plain sequence
    of names; default: the paper's fe/be/bg topology), and allocation
    queries compile to symbolic
    :class:`~repro.coordinator.allocation.AllocationSpec` objects that a
    deployer resolves against a target environment's CNDBs at deploy time.
    The resulting graph is picklable and reusable across environments.
    """

    def __init__(
        self, clusters: Any = None, functions: Optional[Dict[str, FunctionDef]] = None
    ):
        if clusters is None:
            self.clusters = tuple(DEFAULT_CLUSTERS)
        elif hasattr(clusters, "cluster_names"):
            self.clusters = tuple(clusters.cluster_names())
        else:
            self.clusters = tuple(clusters)
        self.functions = functions if functions is not None else {}
        self.graph = QueryGraph()
        self._sp_counter = itertools.count(1)
        self._name_hint: Optional[str] = None
        # Subqueries whose compilation is deferred until every definition of
        # the enclosing query is bound (the paper's queries freely reference
        # stream processes defined by later conjuncts).
        self._pending: List[Tuple[SPDef, Expr, Scope]] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def compile_select(self, query: SelectQuery) -> QueryGraph:
        """Compile a top-level select query into a deployable graph."""
        scope = Scope()
        self._enter_query(query, scope)
        self._compile_pending()
        self.graph.root_plan = self.compile_stream(query.select, scope)
        self._compile_pending()
        self.graph.validate()
        return self.graph

    def _compile_pending(self) -> None:
        """Compile deferred stream-process subqueries (may enqueue more)."""
        while self._pending:
            sp_def, expr, scope = self._pending.pop(0)
            sp_def.plan = self.compile_stream(expr, scope)

    # ------------------------------------------------------------------
    # Query-clause evaluation
    # ------------------------------------------------------------------
    def _enter_query(self, query: SelectQuery, scope: Scope) -> None:
        """Declare the from-clause variables and evaluate the definitions."""
        for decl in query.decls:
            scope.declare(decl.name)
        eq_conditions = [c for c in query.conditions if c.kind is CondKind.EQ]
        in_conditions = [c for c in query.conditions if c.kind is CondKind.IN]
        if in_conditions:
            names = ", ".join(c.var for c in in_conditions)
            raise QuerySemanticError(
                f"iteration over {names} is only supported inside the subquery "
                "argument of spv(); the top level of a query binds single values"
            )
        for condition in self._ordered(eq_conditions, query):
            self._name_hint = condition.var
            value = self.eval_setup(condition.expr, scope)
            self._name_hint = None
            scope.bind(condition.var, value)

    def _ordered(self, conditions: Sequence[Condition], query: SelectQuery) -> List[Condition]:
        """Topologically order definitions by their variable dependencies.

        A definition may reference variables defined by *later* conjuncts
        (the paper's Query 1 defines c before b); cycles are rejected —
        with one relaxation: a reference to a variable bound to a stream
        process is not a setup-time dependency when it only appears under
        ``extract``/``merge`` inside an ``sp`` subquery, because those are
        resolved to subscription edges at wiring time.  That is exactly the
        radix2 pattern (a extracts from c, c is defined later), so the
        dependency analysis ignores references that occur inside the
        *deferred* first argument of sp()/spv().
        """
        declared = query.declared_names()
        deps: Dict[str, set] = {}
        by_var: Dict[str, Condition] = {}
        for condition in conditions:
            if condition.var not in declared:
                raise QuerySemanticError(
                    f"condition defines {condition.var!r}, which is not declared "
                    "in the from clause"
                )
            if condition.var in by_var:
                raise QuerySemanticError(f"variable {condition.var!r} defined twice")
            by_var[condition.var] = condition
            deps[condition.var] = self._setup_dependencies(condition.expr) & declared
        ordered: List[Condition] = []
        resolved: set = set()
        remaining = dict(deps)
        while remaining:
            ready = [v for v, d in remaining.items() if d <= resolved]
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise QuerySemanticError(
                    f"cyclic definitions among variables: {cycle}"
                )
            for var in sorted(ready):
                ordered.append(by_var[var])
                resolved.add(var)
                del remaining[var]
        return ordered

    def _setup_dependencies(self, expr: Expr) -> set:
        """Free variables of ``expr`` that must be bound before evaluating it.

        The first argument of sp()/spv() is deferred: stream-process
        references inside it become subscription edges, not setup reads.
        Its remaining arguments (cluster, allocation sequence) are evaluated
        eagerly and do contribute dependencies.
        """
        if isinstance(expr, FuncCall) and expr.name in ("sp", "spv") and expr.args:
            deferred = self._stream_refs(expr.args[0])
            eager: set = set()
            for arg in expr.args[1:]:
                eager |= arg.free_vars()
            # Variables the subquery reads at setup time (e.g. n in iota(1,n))
            # are still real dependencies; only extract/merge targets defer.
            eager |= expr.args[0].free_vars() - deferred
            return eager
        return expr.free_vars()

    @staticmethod
    def _stream_refs(expr: Expr) -> set:
        """Variables referenced only as extract()/merge() targets in ``expr``."""
        refs: set = set()

        def visit(node: Expr) -> None:
            if isinstance(node, FuncCall):
                if node.name in ("extract", "merge"):
                    for arg in node.args:
                        if isinstance(arg, Var):
                            refs.add(arg.name)
                        elif isinstance(arg, SetExpr):
                            for item in arg.items:
                                if isinstance(item, Var):
                                    refs.add(item.name)
                        else:
                            visit(arg)
                else:
                    for arg in node.args:
                        visit(arg)
            elif isinstance(node, SetExpr):
                for item in node.items:
                    visit(item)
            elif isinstance(node, SelectQuery):
                for cond in node.conditions:
                    visit(cond.expr)
                visit(node.select)

        visit(expr)
        return refs

    # ------------------------------------------------------------------
    # Setup-level evaluation
    # ------------------------------------------------------------------
    def eval_setup(self, expr: Expr, scope: Scope) -> Any:
        """Evaluate an expression to a setup-time value."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Var):
            return scope.lookup(expr.name)
        if isinstance(expr, SetExpr):
            return [self.eval_setup(item, scope) for item in expr.items]
        if isinstance(expr, SelectQuery):
            return [
                self.eval_setup(expr.select, binding)
                for binding in self._enumerate_bindings(expr, scope)
            ]
        if isinstance(expr, FuncCall):
            return self._eval_setup_call(expr, scope)
        raise QuerySemanticError(f"cannot evaluate {type(expr).__name__} at setup time")

    def _eval_setup_call(self, call: FuncCall, scope: Scope) -> Any:
        name = call.name
        if name == "sp":
            return self._make_sp(call, scope)
        if name == "spv":
            return self._make_spv(call, scope)
        if name == "iota":
            low, high = self._eval_args(call, scope, 2, "iota")
            self._require_int(low, "iota"), self._require_int(high, "iota")
            return list(range(int(low), int(high) + 1))
        if name == "filename":
            (index,) = self._eval_args(call, scope, 1, "filename")
            return corpus.filename(self._require_int(index, "filename"))
        if name in ("urr", "inPset", "psetrr"):
            # Allocation queries are position-dependent: they are resolved
            # against the target cluster by the enclosing sp()/spv() call.
            raise QuerySemanticError(
                f"{name}() is an allocation sequence query; it may only appear "
                "as the third argument of sp() or spv()"
            )
        raise QuerySemanticError(
            f"unknown function {name!r} in a setup-level expression"
        )

    def _eval_args(self, call: FuncCall, scope: Scope, arity: int, name: str) -> List[Any]:
        if len(call.args) != arity:
            raise QuerySemanticError(
                f"{name}() takes {arity} argument(s), got {len(call.args)}"
            )
        return [self.eval_setup(arg, scope) for arg in call.args]

    @staticmethod
    def _require_int(value: Any, fn: str) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise QuerySemanticError(f"{fn}() needs an integer, got {value!r}")
        return value

    @staticmethod
    def _require_str(value: Any, fn: str) -> str:
        if not isinstance(value, str):
            raise QuerySemanticError(f"{fn}() needs a string, got {value!r}")
        return value

    # ------------------------------------------------------------------
    # Stream processes (the sp / spv special forms)
    # ------------------------------------------------------------------
    def _fresh_sp_id(self, hint: Optional[str] = None) -> str:
        count = next(self._sp_counter)
        base = hint or self._name_hint or "sp"
        return f"{base}@{count}"

    def _make_sp(self, call: FuncCall, scope: Scope) -> SPHandle:
        if not 2 <= len(call.args) <= 3:
            raise QuerySemanticError(
                f"sp(subquery, cluster[, allocation]) takes 2 or 3 arguments, "
                f"got {len(call.args)}"
            )
        cluster = self._require_str(self.eval_setup(call.args[1], scope), "sp")
        self._check_cluster(cluster)
        allocation = self._allocation(call.args[2], scope, cluster) if len(call.args) == 3 else None
        sp_id = self._fresh_sp_id()
        sp_def = SPDef(sp_id=sp_id, cluster=cluster, allocation=allocation, span=call.span)
        self.graph.add(sp_def)
        self._pending.append((sp_def, call.args[0], scope))
        return SPHandle(sp_id)

    def _make_spv(self, call: FuncCall, scope: Scope) -> SPVHandle:
        if not 2 <= len(call.args) <= 3:
            raise QuerySemanticError(
                f"spv(subqueries, cluster[, allocation]) takes 2 or 3 arguments, "
                f"got {len(call.args)}"
            )
        cluster = self._require_str(self.eval_setup(call.args[1], scope), "spv")
        self._check_cluster(cluster)
        allocation = (
            self._allocation(call.args[2], scope, cluster) if len(call.args) == 3 else None
        )
        hint = self._name_hint
        subquery = call.args[0]
        if isinstance(subquery, SelectQuery):
            members: List[Tuple[Expr, Scope]] = [
                (subquery.select, binding)
                for binding in self._enumerate_bindings(subquery, scope)
            ]
        elif isinstance(subquery, SetExpr):
            members = [(item, scope) for item in subquery.items]
        else:
            raise QuerySemanticError(
                "the first argument of spv() must be a parenthesized select "
                "query or a set expression of subqueries"
            )
        handles = []
        for index, (expr, member_scope) in enumerate(members):
            sp_id = self._fresh_sp_id(f"{hint}[{index}]" if hint else None)
            sp_def = SPDef(
                sp_id=sp_id, cluster=cluster, allocation=allocation, span=call.span
            )
            self.graph.add(sp_def)
            self._pending.append((sp_def, expr, member_scope))
            handles.append(SPHandle(sp_id))
        return SPVHandle(tuple(handles))

    def _enumerate_bindings(self, query: SelectQuery, scope: Scope) -> List[Scope]:
        """All binding scopes of a nested, possibly iterating, select query.

        Equality definitions are evaluated once (in dependency order);
        ``in`` conditions iterate, producing the cartesian product of their
        domains — ``from integer i where i in iota(1,n)`` yields n scopes.
        """
        base = scope.child()
        for decl in query.decls:
            base.declare(decl.name)
        eq_conditions = [c for c in query.conditions if c.kind is CondKind.EQ]
        in_conditions = [c for c in query.conditions if c.kind is CondKind.IN]
        for condition in self._ordered(eq_conditions, query):
            base.bind(condition.var, self.eval_setup(condition.expr, scope))
        if not in_conditions:
            return [base]
        domains: List[Tuple[str, List[Any]]] = []
        iterated: set = set()
        for condition in in_conditions:
            if condition.var not in query.declared_names():
                raise QuerySemanticError(
                    f"iteration variable {condition.var!r} is not declared"
                )
            if condition.var in iterated:
                raise QuerySemanticError(
                    f"iteration variable {condition.var!r} has two 'in' conditions"
                )
            iterated.add(condition.var)
            domain = self.eval_setup(condition.expr, base)
            if isinstance(domain, SPVHandle):
                domain = list(domain)
            if not isinstance(domain, list):
                raise QuerySemanticError(
                    f"'{condition.var} in ...' needs a bag to iterate over, "
                    f"got {type(domain).__name__}"
                )
            domains.append((condition.var, domain))
        scopes: List[Scope] = []
        names = [name for name, _ in domains]
        for combo in itertools.product(*[values for _, values in domains]):
            bound = base.child()
            for name, value in zip(names, combo):
                bound.bind(name, value)
            scopes.append(bound)
        return scopes

    def _check_cluster(self, cluster: str) -> None:
        if cluster not in self.clusters:
            raise QuerySemanticError(
                f"unknown cluster {cluster!r}; this environment has "
                f"{sorted(self.clusters)}"
            )

    # ------------------------------------------------------------------
    # Allocation sequences
    # ------------------------------------------------------------------
    def _allocation(self, expr: Expr, scope: Scope, cluster: str) -> AllocationDirective:
        """Compile the third argument of sp()/spv() for ``cluster``.

        Allocation queries compile to symbolic specs resolved against the
        deployment environment's CNDBs by the deployer, so a compiled plan
        stays environment-independent (and picklable).
        """
        if isinstance(expr, FuncCall):
            if expr.name == "urr":
                (name,) = self._eval_args(expr, scope, 1, "urr")
                return UrrSpec(self._require_str(name, "urr"))
            if expr.name == "inPset":
                (pset,) = self._eval_args(expr, scope, 1, "inPset")
                return InPsetSpec(cluster, self._require_int(pset, "inPset"))
            if expr.name == "psetrr":
                self._eval_args(expr, scope, 0, "psetrr")
                return PsetRoundRobinSpec(cluster)
        value = self.eval_setup(expr, scope)
        if isinstance(value, AllocationSequence):
            return value
        if isinstance(value, bool):
            raise QuerySemanticError(f"invalid allocation sequence {value!r}")
        if isinstance(value, int):
            return ExplicitNodesSpec((value,))
        if isinstance(value, list) and value and all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        ):
            return ExplicitNodesSpec(tuple(value))
        raise QuerySemanticError(
            f"allocation sequences are node numbers, node-number bags, or "
            f"allocation queries; got {value!r}"
        )

    # ------------------------------------------------------------------
    # Stream-level compilation
    # ------------------------------------------------------------------
    def compile_stream(self, expr: Expr, scope: Scope) -> OpSpec:
        """Compile an expression into a stream plan."""
        if isinstance(expr, Literal):
            return plan_op("constant", expr.value)
        if isinstance(expr, Var):
            value = scope.lookup(expr.name)
            return self._lift(value, expr.name)
        if isinstance(expr, SelectQuery):
            bindings = self._enumerate_bindings(expr, scope)
            if len(bindings) != 1:
                raise QuerySemanticError(
                    "an iterating select denotes a bag of streams; wrap it in "
                    "spv() and merge() to use it as one stream"
                )
            return self.compile_stream(expr.select, bindings[0])
        if isinstance(expr, SetExpr):
            raise QuerySemanticError(
                "a set expression is not a stream; did you mean merge({...})?"
            )
        if isinstance(expr, FuncCall):
            return self._compile_stream_call(expr, scope)
        raise QuerySemanticError(f"cannot compile {type(expr).__name__} as a stream")

    def _lift(self, value: Any, label: str) -> OpSpec:
        """Turn a setup value into a stream plan where that makes sense."""
        if isinstance(value, OpSpec):
            return value
        if isinstance(value, SPHandle):
            return plan_input(value.sp_id)
        if isinstance(value, (int, float, str)) and not isinstance(value, bool):
            return plan_op("constant", value)
        raise QuerySemanticError(
            f"{label!r} (a {type(value).__name__}) cannot be used as a stream; "
            "stream-process bags need merge(), scalars need streamof()"
        )

    def _compile_stream_call(self, call: FuncCall, scope: Scope) -> OpSpec:
        name = call.name
        if name == "extract":
            (value,) = self._eval_args(call, scope, 1, "extract")
            if isinstance(value, SPVHandle):
                raise QuerySemanticError(
                    "extract() takes one stream process; use merge() for a bag"
                )
            if not isinstance(value, SPHandle):
                raise QuerySemanticError(
                    f"extract() needs a stream process, got {type(value).__name__}"
                )
            return plan_input(value.sp_id)
        if name == "merge":
            (value,) = self._eval_args(call, scope, 1, "merge")
            handles = self._as_handle_bag(value)
            children = tuple(plan_input(h.sp_id) for h in handles)
            return plan_op("merge", children=children)
        if name == "streamof":
            if len(call.args) != 1:
                raise QuerySemanticError("streamof() takes exactly one argument")
            # streamof() lifts any expression to a stream; compiled plans
            # already produce streams, so this is the identity at plan level.
            return self.compile_stream(call.args[0], scope)
        if name in _UNARY_STREAM_OPS:
            if len(call.args) != 1:
                raise QuerySemanticError(f"{name}() takes exactly one argument")
            child = self.compile_stream(call.args[0], scope)
            return plan_op(name, children=(child,))
        if name == "gen_array":
            nbytes, count = self._eval_args(call, scope, 2, "gen_array")
            return plan_op(
                "gen_array",
                self._require_int(nbytes, "gen_array"),
                self._require_int(count, "gen_array"),
            )
        if name == "iota":
            low, high = self._eval_args(call, scope, 2, "iota")
            return plan_op(
                "iota", self._require_int(low, "iota"), self._require_int(high, "iota")
            )
        if name == "receiver":
            (source,) = self._eval_args(call, scope, 1, "receiver")
            return plan_op("receiver", self._require_str(source, "receiver"))
        if name == "grep":
            pattern, file_name = self._eval_args(call, scope, 2, "grep")
            return plan_op(
                "grep",
                self._require_str(pattern, "grep"),
                self._require_str(file_name, "grep"),
            )
        if name == "first":
            if len(call.args) != 2:
                raise QuerySemanticError("first(stream, n) takes exactly 2 arguments")
            child = self.compile_stream(call.args[0], scope)
            limit = self._require_int(self.eval_setup(call.args[1], scope), "first")
            return plan_op("first", limit, children=(child,))
        if name in ("above", "below"):
            if len(call.args) != 2:
                raise QuerySemanticError(f"{name}(stream, x) takes exactly 2 arguments")
            child = self.compile_stream(call.args[0], scope)
            threshold = self.eval_setup(call.args[1], scope)
            if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
                raise QuerySemanticError(f"{name}() needs a numeric threshold")
            return plan_op(name, threshold, children=(child,))
        if name == "sample":
            if len(call.args) != 2:
                raise QuerySemanticError("sample(stream, k) takes exactly 2 arguments")
            child = self.compile_stream(call.args[0], scope)
            every = self._require_int(self.eval_setup(call.args[1], scope), "sample")
            return plan_op("sample", every, children=(child,))
        if name == "groupwin":
            if len(call.args) != 5:
                raise QuerySemanticError(
                    "groupwin(stream, fn, size, keyidx, validx) takes 5 arguments"
                )
            child = self.compile_stream(call.args[0], scope)
            fn = self._require_str(self.eval_setup(call.args[1], scope), "groupwin")
            size = self._require_int(self.eval_setup(call.args[2], scope), "groupwin")
            key_index = self._require_int(self.eval_setup(call.args[3], scope), "groupwin")
            value_index = self._require_int(self.eval_setup(call.args[4], scope), "groupwin")
            return plan_op("groupwin", fn, size, key_index, value_index, children=(child,))
        if name == "winagg":
            if len(call.args) not in (3, 4):
                raise QuerySemanticError(
                    "winagg(stream, fn, size[, slide]) takes 3 or 4 arguments"
                )
            child = self.compile_stream(call.args[0], scope)
            fn = self._require_str(self.eval_setup(call.args[1], scope), "winagg")
            size = self._require_int(self.eval_setup(call.args[2], scope), "winagg")
            slide = (
                self._require_int(self.eval_setup(call.args[3], scope), "winagg")
                if len(call.args) == 4
                else 1
            )
            return plan_op("window", fn, size, slide, children=(child,))
        if name in ("sp", "spv"):
            raise QuerySemanticError(
                f"{name}() creates a stream process, not a stream; bind it to a "
                "variable and extract()/merge() it"
            )
        if name in self.functions:
            return self._apply_function(self.functions[name], call, scope)
        raise QuerySemanticError(f"unknown function {name!r} in a stream expression")

    @staticmethod
    def _as_handle_bag(value: Any) -> List[SPHandle]:
        if isinstance(value, SPVHandle):
            handles = list(value)
        elif isinstance(value, SPHandle):
            handles = [value]
        elif isinstance(value, list):
            handles = value
        else:
            raise QuerySemanticError(
                f"merge() needs a bag of stream processes, got {type(value).__name__}"
            )
        if not handles:
            raise QuerySemanticError("merge() over an empty bag of stream processes")
        for handle in handles:
            if not isinstance(handle, SPHandle):
                raise QuerySemanticError(
                    f"merge() bag contains a {type(handle).__name__}, "
                    "expected stream processes"
                )
        return handles

    # ------------------------------------------------------------------
    # User-defined query functions
    # ------------------------------------------------------------------
    def _apply_function(self, function: FunctionDef, call: FuncCall, scope: Scope) -> OpSpec:
        definition = function.definition
        if len(call.args) != function.arity:
            raise QuerySemanticError(
                f"{function.name}() takes {function.arity} argument(s), "
                f"got {len(call.args)}"
            )
        # Function bodies see only their parameters (no dynamic scoping).
        body_scope = Scope()
        for param, arg in zip(definition.params, call.args):
            if param.type_name == "stream":
                value: Any = self.compile_stream(arg, scope)
            else:
                value = self.eval_setup(arg, scope)
            body_scope.bind(param.name, value)
        body = definition.body
        inner = body_scope.child()
        self._enter_query(body, inner)
        return self.compile_stream(body.select, inner)
