"""Lexically nested variable scopes for the SCSQL evaluator."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.util.errors import QuerySemanticError

#: Sentinel for declared-but-not-yet-bound variables.
UNBOUND = object()


class Scope:
    """One binding environment; nested selects/functions get child scopes."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._bindings: Dict[str, Any] = {}

    def declare(self, name: str) -> None:
        """Introduce ``name`` in this scope, unbound."""
        if name in self._bindings:
            raise QuerySemanticError(f"variable {name!r} declared twice")
        self._bindings[name] = UNBOUND

    def bind(self, name: str, value: Any) -> None:
        """Bind a declared (or new) name in this scope."""
        self._bindings[name] = value

    def is_local(self, name: str) -> bool:
        return name in self._bindings

    def lookup(self, name: str) -> Any:
        """The value of ``name``, searching enclosing scopes.

        Raises:
            QuerySemanticError: If the name is undeclared or still unbound.
        """
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._bindings:
                value = scope._bindings[name]
                if value is UNBOUND:
                    raise QuerySemanticError(
                        f"variable {name!r} is used before it is defined"
                    )
                return value
            scope = scope.parent
        raise QuerySemanticError(f"undeclared variable {name!r}")

    def child(self) -> "Scope":
        return Scope(parent=self)
