"""First-class stream-process values of the SCSQL evaluator.

"The function sp(s, c) assigns the subquery s to a new stream process to be
run in cluster c" and returns a handle; ``spv`` returns "a set (bag) of
handles to the assigned stream processes" (paper section 2.4).  These
handle objects are what SCSQL variables of type ``sp`` / ``bag of sp`` are
bound to during query compilation, and what ``extract()`` / ``merge()``
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class SPHandle:
    """A handle to one assigned stream process."""

    sp_id: str

    def __str__(self) -> str:
        return self.sp_id


@dataclass(frozen=True)
class SPVHandle:
    """A bag of handles to parallel stream processes (the result of spv)."""

    handles: Tuple[SPHandle, ...]

    def __iter__(self) -> Iterator[SPHandle]:
        return iter(self.handles)

    def __len__(self) -> int:
        return len(self.handles)

    def __str__(self) -> str:
        return "{" + ", ".join(str(h) for h in self.handles) + "}"
