"""SCSQL: the stream query language of SCSQ.

The pipeline: :mod:`repro.scsql.lexer` tokenizes, :mod:`repro.scsql.parser`
builds the AST, :mod:`repro.scsql.compiler` evaluates the setup level
(stream-process creation, allocation sequences) and compiles the stream
level into execution plans, and :class:`repro.scsql.session.SCSQSession`
runs the result on a simulated environment.
"""

from repro.scsql.ast import (
    CondKind,
    Condition,
    CreateFunction,
    Decl,
    Expr,
    FuncCall,
    Literal,
    Param,
    SelectQuery,
    SetExpr,
    Var,
)
from repro.scsql.compiler import FunctionDef, QueryCompiler
from repro.scsql.handles import SPHandle, SPVHandle
from repro.scsql.lexer import Token, TokenKind, tokenize
from repro.scsql.parser import parse, parse_query
from repro.scsql.plan import DeploymentPlan, compile_plan
from repro.scsql.scopes import Scope
from repro.scsql.session import SCSQSession
from repro.scsql.unparse import unparse, unparse_expr

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse",
    "parse_query",
    "unparse",
    "unparse_expr",
    "QueryCompiler",
    "FunctionDef",
    "DeploymentPlan",
    "compile_plan",
    "SCSQSession",
    "SPHandle",
    "SPVHandle",
    "Scope",
    "CondKind",
    "Condition",
    "CreateFunction",
    "Decl",
    "Expr",
    "FuncCall",
    "Literal",
    "Param",
    "SelectQuery",
    "SetExpr",
    "Var",
]
