"""User sessions: the front door of the SCSQ reproduction.

A :class:`SCSQSession` plays the role of the paper's client manager
interaction: users submit SCSQL statements; select queries are compiled,
deployed on the session's environment, executed to completion, and their
results returned together with an execution report.  ``create function``
statements register user-defined query functions (e.g. the paper's
``radix2``) for use in later queries.

Because one simulated environment accumulates state (node placements,
simulated time), a *measurement* typically uses a fresh session per run;
:mod:`repro.core.measurement` automates that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Optional

from repro.coordinator.client_manager import ClientManager, ExecutionReport
from repro.coordinator.coordinator import CoordinatorRegistry
from repro.engine.operators.sources import ExternalReceiver
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.ast import CreateFunction, SelectQuery
from repro.scsql.compiler import FunctionDef, QueryCompiler
from repro.scsql.parser import parse
from repro.util.errors import QuerySemanticError

if TYPE_CHECKING:
    from repro.coordinator.graph import QueryGraph
    from repro.scsql.plan import DeploymentPlan


class SCSQSession:
    """An interactive session against one simulated environment."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        settings: Optional[ExecutionSettings] = None,
        coordinators: Optional[CoordinatorRegistry] = None,
    ):
        self.env = env or Environment(EnvironmentConfig())
        self.settings = settings or ExecutionSettings()
        self.client_manager = ClientManager(self.env, coordinators)
        self.functions: Dict[str, FunctionDef] = {}

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def execute(
        self,
        text: str,
        settings: Optional[ExecutionSettings] = None,
        stop_after: Optional[float] = None,
        optimize: bool = False,
    ) -> Optional[ExecutionReport]:
        """Run one SCSQL statement.

        Select queries return an :class:`ExecutionReport`; ``create
        function`` statements register the function and return None.
        ``stop_after`` terminates the query at that simulated time — needed
        for unbounded continuous queries (e.g. ``gen_array(n, -1)``), and
        usable to truncate finite ones.  ``optimize=True`` runs the
        cost-based placer over stream processes that carry no explicit
        allocation sequence (user-specified topologies always win).
        """
        statement = parse(text)
        if isinstance(statement, CreateFunction):
            self._define_function(statement)
            return None
        assert isinstance(statement, SelectQuery)
        compiler = QueryCompiler(self.env, self.functions)
        graph = compiler.compile_select(statement)
        effective = settings or self.settings
        if optimize:
            from repro.optimizer import CostBasedPlacer  # avoid an import cycle

            CostBasedPlacer(self.env, effective).place(graph)
        return self.client_manager.execute(graph, effective, stop_after=stop_after)

    def compile(self, text: str) -> "QueryGraph":
        """Compile a select query without executing it (for inspection)."""
        statement = parse(text)
        if not isinstance(statement, SelectQuery):
            raise QuerySemanticError("compile() takes a select query")
        compiler = QueryCompiler(self.env, self.functions)
        return compiler.compile_select(statement)

    def plan(self, text: str, settings: Optional[ExecutionSettings] = None) -> "DeploymentPlan":
        """Compile a select query into a reusable, environment-independent
        :class:`~repro.scsql.plan.DeploymentPlan` (this session's functions
        are visible to the query)."""
        from repro.scsql.plan import compile_plan  # session is imported by plan users

        return compile_plan(
            text, functions=self.functions, settings=settings or self.settings
        )

    def explain(self, text: str, settings: Optional[ExecutionSettings] = None) -> str:
        """Compile a query and describe its process graph without running it.

        Shows each stream process's cluster, subquery plan, and subscription
        edges, plus — for stream processes without explicit allocation
        sequences — the placement the cost-based optimizer would choose and
        its predicted bottleneck bandwidth.
        """
        from repro.optimizer import CostBasedPlacer  # avoid an import cycle
        from repro.util.units import format_rate

        graph = self.compile(text)
        effective = settings or self.settings
        lines = []
        for sp in graph.sps.values():
            pinned = sp.allocation is not None
            lines.append(
                f"stream process {sp.sp_id} on cluster {sp.cluster!r}"
                + (" (explicit allocation)" if pinned else "")
            )
            assert sp.plan is not None
            lines.append(sp.plan.describe(indent=1))
        assert graph.root_plan is not None
        lines.append("client manager root plan:")
        lines.append(graph.root_plan.describe(indent=1))
        placeable = [sp for sp in graph.sps.values() if sp.allocation is None]
        if placeable:
            placer = CostBasedPlacer(self.env, effective)
            assignment = placer.place(graph)
            predicted = placer.predicted_bandwidth(graph, assignment)
            lines.append("optimizer placement:")
            for sp_id, index in sorted(assignment.items()):
                cluster = graph.sps[sp_id].cluster
                lines.append(f"  {sp_id} -> {cluster}:{index}")
            if predicted != float("inf"):
                lines.append(f"predicted bottleneck bandwidth: {format_rate(predicted)}")
            # explain() must not mutate placement state for later queries.
            for sp in placeable:
                sp.allocation = None
        return "\n".join(lines)

    def _define_function(self, definition: CreateFunction) -> None:
        if definition.name in self.functions:
            raise QuerySemanticError(
                f"function {definition.name!r} is already defined in this session"
            )
        self.functions[definition.name] = FunctionDef(definition)

    # ------------------------------------------------------------------
    # External sources
    # ------------------------------------------------------------------
    @staticmethod
    def register_source(name: str, factory: Callable[[], Iterable[Any]]) -> None:
        """Register a named external stream source for ``receiver(name)``."""
        ExternalReceiver.register(name, factory)

    @staticmethod
    def unregister_source(name: str) -> None:
        """Remove a named external stream source."""
        ExternalReceiver.unregister(name)
