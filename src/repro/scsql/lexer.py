"""Tokenizer for SCSQL.

SCSQL is "a query language similar to SQL, but extended with streams and
stream processes as first-class objects" (paper section 2.4).  The token
set covers the paper's published queries: identifiers, integer/real
literals, single-quoted strings, keywords, and the punctuation of function
calls, set expressions, and ``create function`` signatures (``->``).

Keywords are case-insensitive, as in SQL; identifiers keep their case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.util.errors import QueryParseError

KEYWORDS = frozenset(
    [
        "select",
        "from",
        "where",
        "and",
        "in",
        "bag",
        "of",
        "create",
        "function",
        "as",
    ]
)


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMICOLON = ";"
    EQUALS = "="
    ARROW = "->"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def value(self) -> float:
        """The literal value of a NUMBER token (int if integral)."""
        if self.kind is not TokenKind.NUMBER:
            raise QueryParseError(f"token {self.text!r} is not a number", self.line, self.column)
        if any(c in self.text for c in ".eE"):
            return float(self.text)
        return int(self.text)

    def __str__(self) -> str:
        return self.text or self.kind.value


_SINGLE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "=": TokenKind.EQUALS,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize SCSQL source text.

    Raises:
        QueryParseError: On unterminated strings or unexpected characters.
    """
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    line, column = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            # SQL-style line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_column = line, column
        if ch == "-" and text[i : i + 2] == "->":
            yield Token(TokenKind.ARROW, "->", start_line, start_column)
            i += 2
            column += 2
            continue
        if ch in _SINGLE_CHAR:
            yield Token(_SINGLE_CHAR[ch], ch, start_line, start_column)
            i += 1
            column += 1
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\n":
                    raise QueryParseError("unterminated string literal", start_line, start_column)
                j += 1
            if j >= n:
                raise QueryParseError("unterminated string literal", start_line, start_column)
            yield Token(TokenKind.STRING, text[i + 1 : j], start_line, start_column)
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1 if ch == "-" else i
            while j < n and (text[j].isdigit() or text[j] in ".eE"):
                if text[j] in "eE" and j + 1 < n and text[j + 1] in "+-":
                    j += 1
                j += 1
            lexeme = text[i:j]
            try:
                float(lexeme)
            except ValueError:
                raise QueryParseError(f"bad number literal {lexeme!r}", start_line, start_column)
            yield Token(TokenKind.NUMBER, lexeme, start_line, start_column)
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = TokenKind.KEYWORD if word.lower() in KEYWORDS else TokenKind.IDENT
            lexeme = word.lower() if kind is TokenKind.KEYWORD else word
            yield Token(kind, lexeme, start_line, start_column)
            column += j - i
            i = j
            continue
        raise QueryParseError(f"unexpected character {ch!r}", start_line, start_column)
    yield Token(TokenKind.END, "", line, column)
