"""Abstract syntax of SCSQL.

The AST mirrors the shape of the paper's published queries.  A statement is
either a :class:`SelectQuery` or a :class:`CreateFunction`.  Select queries
have three clauses::

    select <expr>
    from   [bag of] <type> <name>, ...
    where  <var> = <expr> and <var> in <expr> and ...

Expression nodes are literals, variable references, function calls, set
expressions (``{a, b}``), and parenthesized nested select queries (the
subquery argument of ``spv``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple, Union

from repro.util.source import Span


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of SCSQL expressions."""

    def free_vars(self) -> Set[str]:
        """Names of variables this expression references (unbound)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A number or string constant."""

    value: Union[int, float, str]

    def free_vars(self) -> Set[str]:
        return set()


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a declared variable or function parameter."""

    name: str

    def free_vars(self) -> Set[str]:
        return {self.name}


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function application, builtin or user-defined.

    ``span`` is the source position of the function name, attached by the
    parser; it identifies nodes but not their value (excluded from
    equality), and static-analysis diagnostics report it.
    """

    name: str
    args: Tuple[Expr, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def free_vars(self) -> Set[str]:
        names: Set[str] = set()
        for arg in self.args:
            names |= arg.free_vars()
        return names


@dataclass(frozen=True)
class SetExpr(Expr):
    """A set/bag literal: ``{a, b}``."""

    items: Tuple[Expr, ...]

    def free_vars(self) -> Set[str]:
        names: Set[str] = set()
        for item in self.items:
            names |= item.free_vars()
        return names


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
class CondKind(enum.Enum):
    EQ = "="
    IN = "in"


@dataclass(frozen=True)
class Decl:
    """One ``from``-clause declaration: ``[bag of] <type> <name>``."""

    name: str
    type_name: str
    is_bag: bool = False


@dataclass(frozen=True)
class Condition:
    """One ``where``-clause conjunct: ``var = expr`` or ``var in expr``."""

    kind: CondKind
    var: str
    expr: Expr

    def free_vars(self) -> Set[str]:
        return self.expr.free_vars()


@dataclass(frozen=True)
class SelectQuery(Expr):
    """A (possibly nested) select query.

    As an expression, a nested select denotes the bag of values of its
    select expression over all bindings of its iteration variables — the
    form ``spv`` consumes.
    """

    select: Expr
    decls: Tuple[Decl, ...] = ()
    conditions: Tuple[Condition, ...] = ()

    def declared_names(self) -> Set[str]:
        return {d.name for d in self.decls}

    def decl(self, name: str) -> Optional[Decl]:
        for d in self.decls:
            if d.name == name:
                return d
        return None

    def free_vars(self) -> Set[str]:
        inner = self.select.free_vars()
        for cond in self.conditions:
            inner |= cond.free_vars()
        return inner - self.declared_names()


@dataclass(frozen=True)
class Param:
    """One parameter of a user-defined query function."""

    name: str
    type_name: str


@dataclass(frozen=True)
class CreateFunction:
    """``create function name(type arg, ...) -> type as select ...``."""

    name: str
    params: Tuple[Param, ...]
    return_type: str
    body: SelectQuery


Statement = Union[SelectQuery, CreateFunction]
