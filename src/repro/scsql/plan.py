"""Deployment plans: the compile-once form of a continuous query.

A :class:`DeploymentPlan` is the environment-independent intermediate
representation sitting between the SCSQL front end and the coordinator
layer.  It is produced *once* per query by :func:`compile_plan` — parse +
:class:`~repro.scsql.compiler.QueryCompiler` — and carries everything a
deployment needs: the :class:`~repro.coordinator.graph.QueryGraph` with its
symbolic allocation constraints, the execution settings, and the source
text for provenance.

Because compilation no longer consults a live
:class:`~repro.hardware.environment.Environment` (cluster names validate
against a topology vocabulary, allocation queries reduce to picklable
:class:`~repro.coordinator.allocation.AllocationSpec` objects), one plan
can be pickled to sweep workers and deployed any number of times onto any
compatible environment::

    plan = compile_plan("select count(extract(r)) from ...")
    deployer = Deployer(env)
    report = deployer.run(plan)            # place + deploy + run
    report = deployer.run(plan)            # deploy the same plan again

The full lifecycle is parse -> compile -> place -> deploy -> run ->
teardown; the place/deploy/run/teardown half lives in
:mod:`repro.coordinator.deployer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

from repro.coordinator.graph import QueryGraph
from repro.engine.settings import ExecutionSettings
from repro.scsql.ast import SelectQuery
from repro.scsql.compiler import FunctionDef, QueryCompiler
from repro.scsql.parser import parse
from repro.util.errors import QuerySemanticError


@dataclass(frozen=True)
class DeploymentPlan:
    """A compiled continuous query, ready to deploy anywhere.

    Attributes:
        query: The SCSQL source text the plan was compiled from.
        graph: The compiled process graph.  Deployments never mutate it:
            they work on :meth:`instantiate` copies, so one plan may back
            many (even concurrent) deployments.
        settings: Execution settings the query was compiled for; a
            deployment may override them at deploy time.
    """

    query: str
    graph: QueryGraph
    settings: ExecutionSettings = field(default_factory=ExecutionSettings)

    def instantiate(self) -> QueryGraph:
        """A fresh deployable copy of the plan's process graph."""
        return self.graph.instantiate()

    def describe(self) -> str:
        """Human-readable summary of the plan's process graph."""
        lines = []
        for sp in self.graph.sps.values():
            pinned = sp.allocation is not None
            lines.append(
                f"stream process {sp.sp_id} on cluster {sp.cluster!r}"
                + (" (explicit allocation)" if pinned else "")
            )
            assert sp.plan is not None
            lines.append(sp.plan.describe(indent=1))
        assert self.graph.root_plan is not None
        lines.append("client manager root plan:")
        lines.append(self.graph.root_plan.describe(indent=1))
        return "\n".join(lines)


def compile_plan(
    text: str,
    functions: Optional[Dict[str, FunctionDef]] = None,
    settings: Optional[ExecutionSettings] = None,
    clusters: Optional[Union[Sequence[str], object]] = None,
) -> DeploymentPlan:
    """Compile one SCSQL select query into a :class:`DeploymentPlan`.

    Args:
        text: The select query source.
        functions: User-defined query functions visible to the query.
        settings: Execution settings to bake into the plan (defaults used
            otherwise; deployments may still override).
        clusters: Cluster vocabulary to validate against — a sequence of
            names or anything with ``cluster_names()`` (e.g. an
            :class:`~repro.hardware.environment.Environment`); defaults to
            the paper's fe/be/bg topology.

    Raises:
        QuerySemanticError: If ``text`` is not a select query or fails
            semantic checks.
    """
    statement = parse(text)
    if not isinstance(statement, SelectQuery):
        raise QuerySemanticError(
            "compile_plan() takes a select query; create-function statements "
            "are session state, not deployable plans"
        )
    compiler = QueryCompiler(clusters, functions)
    graph = compiler.compile_select(statement)
    return DeploymentPlan(
        query=text,
        graph=graph,
        settings=settings if settings is not None else ExecutionSettings(),
    )
