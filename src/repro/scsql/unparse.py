"""Render SCSQL ASTs back to query text.

The unparser produces canonical text that re-parses to an identical AST —
the round-trip property is enforced by the test suite with
hypothesis-generated ASTs.  Useful for logging compiled queries, for
error messages, and for generating query variants programmatically.
"""

from __future__ import annotations

from repro.scsql.ast import (
    CondKind,
    Condition,
    CreateFunction,
    Decl,
    Expr,
    FuncCall,
    Literal,
    SelectQuery,
    SetExpr,
    Statement,
    Var,
)
from repro.util.errors import QueryError


def unparse(statement: Statement) -> str:
    """Render a statement (select query or function definition) as SCSQL."""
    if isinstance(statement, CreateFunction):
        return _function(statement)
    if isinstance(statement, SelectQuery):
        return _select(statement) + ";"
    raise QueryError(f"cannot unparse {type(statement).__name__}")


def unparse_expr(expr: Expr) -> str:
    """Render one expression as SCSQL text."""
    if isinstance(expr, Literal):
        return _literal(expr)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, FuncCall):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, SetExpr):
        items = ", ".join(unparse_expr(i) for i in expr.items)
        return "{" + items + "}"
    if isinstance(expr, SelectQuery):
        return "(" + _select(expr) + ")"
    raise QueryError(f"cannot unparse expression {type(expr).__name__}")


def _literal(literal: Literal) -> str:
    value = literal.value
    if isinstance(value, str):
        if "'" in value or "\n" in value:
            raise QueryError(
                f"string literal {value!r} cannot be represented in SCSQL "
                "(no quote escaping in the grammar)"
            )
        return f"'{value}'"
    return repr(value)


def _decl(decl: Decl) -> str:
    prefix = "bag of " if decl.is_bag else ""
    return f"{prefix}{decl.type_name} {decl.name}"


def _condition(condition: Condition) -> str:
    operator = "=" if condition.kind is CondKind.EQ else " in "
    return f"{condition.var}{operator}{unparse_expr(condition.expr)}"


def _select(query: SelectQuery) -> str:
    text = f"select {unparse_expr(query.select)} from "
    text += ", ".join(_decl(d) for d in query.decls)
    if query.conditions:
        text += " where " + " and ".join(_condition(c) for c in query.conditions)
    return text


def _function(definition: CreateFunction) -> str:
    params = ", ".join(f"{p.type_name} {p.name}" for p in definition.params)
    return (
        f"create function {definition.name}({params}) -> {definition.return_type} "
        f"as {_select(definition.body)};"
    )
